//! Incremental grounding: keep the grounder's working state alive so new
//! EDB facts extend an existing [`GroundProgram`] instead of re-running
//! the whole parse → envelope → instantiate pipeline.
//!
//! [`IncrementalGrounder`] performs the same three passes as
//! [`crate::ground::ground_with`] (safety analysis and compilation,
//! positive-envelope fixpoint, rule instantiation over the envelope) but
//! retains everything a later delta needs:
//!
//! * the working [`HerbrandBase`] and envelope [`Database`], so
//!   [`IncrementalGrounder::assert_fact`] can run the semi-naive rounds
//!   **from the new tuples only** ([`extend_positive`]);
//! * the compiled rules, so only rule bodies mentioning a delta predicate
//!   are re-joined — with the delta relation substituted at one focus
//!   position at a time, classic semi-naive discipline;
//! * the set of already-emitted instances (keyed by rule index and
//!   variable binding), so re-joins never duplicate a ground rule;
//! * the negative literals that were **pruned** because their atom lay
//!   outside the envelope (certainly-true at the time). When a delta
//!   brings such an atom into the envelope, the literal is resurrected
//!   onto the instances it was pruned from — without this, a warm
//!   `assert` would silently change the semantics of old instances.
//!
//! Retraction ([`IncrementalGrounder::retract_fact`]) removes the fact
//! rule but deliberately leaves the envelope as a stale **superset**:
//! instances whose positive body mentions underivable atoms can never
//! fire, and negative literals kept against a larger envelope just
//! evaluate against atoms that are false — both semantics-preserving, at
//! the cost of a slightly larger ground program than a cold re-ground
//! would produce.
//!
//! Updates are **batched**: [`IncrementalGrounder::assert_batch`] /
//! [`IncrementalGrounder::retract_batch`] apply N facts with one
//! envelope round, one resurrection pass, and one focused re-join (the
//! single-fact entry points are one-element batches). Under the
//! active-domain policy the grounder also keeps per-term fact reference
//! counts, so `retract_batch` can tell the retractions that *actually*
//! shrink the domain (cold re-ground required) from the
//! domain-preserving majority (warm).
//!
//! **Rules** are incremental too ([`IncrementalGrounder::assert_rules`] /
//! [`IncrementalGrounder::retract_rules`]): an asserted rule is
//! safety-analyzed and compiled exactly as at load time, joined **once
//! over the existing envelope** to seed the tuples it can already derive,
//! and then the whole batch runs one semi-naive envelope-delta round in
//! which old and new rules participate alike. Heads the new rules bring
//! into the envelope resurrect pruned negative literals on existing
//! instances, old rules are re-joined focused on the delta, and the new
//! rules are instantiated over the final envelope. Retraction drops
//! exactly the ground instances the rule emitted (the grounder keeps
//! per-instance provenance) and, under the active-domain policy, checks
//! per-term **rule-constant reference counts** so only a batch that
//! actually removes a term from the domain forces a cold re-ground —
//! mirroring the fact-retract discipline. The envelope again stays a
//! stale superset, which is semantics-preserving by the same argument as
//! for facts.
//!
//! One caveat: a negative literal over a term that was never materialized
//! (possible only with function symbols under the active-domain policy)
//! cannot be keyed for resurrection. Such programs set
//! [`IncrementalGrounder::supports_incremental`] to `false` and callers
//! should fall back to cold grounding on `assert`. The same flag turns
//! false when a batch errors mid-delta (rule/envelope budget): the
//! grounder is then *poisoned* — the program may be missing consequences
//! — and must be rebuilt cold before further use.

use crate::ast::{Atom, Program, Rule};
use crate::atoms::{AtomId, ConstId, HerbrandBase};
use crate::depgraph::RuleRename;
use crate::error::GroundError;
use crate::fx::{FxHashMap, FxHashSet};
use crate::ground::{
    collect_rule_consts, collect_subterms, intern_ground_term, unsafe_variables, GroundOptions,
    SafetyPolicy,
};
use crate::program::{GroundProgram, GroundProgramBuilder, RuleId};
use crate::relation::{Database, Relation, Tuple};
use crate::seminaive::{
    compile_neg_atoms, compile_rule, eval_pat, evaluate_positive, extend_positive, join,
    try_eval_pat, CompiledAtom, CompiledRule, EvalLimits, Pat,
};
use crate::symbol::Symbol;

/// How one negative literal of an emitted instance resolved against the
/// envelope at emission time.
enum NegResolution {
    /// In the envelope: a real negative literal.
    Inside(Vec<ConstId>),
    /// Resolved to a concrete atom outside the envelope: pruned, but
    /// recorded so a later envelope growth can resurrect it.
    Outside(Symbol, Tuple),
    /// Mentions a term never materialized: pruned and unrecoverable.
    Unresolved,
}

struct Emission {
    sig: Box<[Option<ConstId>]>,
    head: Vec<ConstId>,
    pos: Vec<Vec<ConstId>>,
    neg: Vec<NegResolution>,
}

/// An imported, validated, and compiled `assert_rules` batch — produced
/// without mutating the grounder's working state, so a rejected batch
/// leaves everything untouched.
struct PreparedRules {
    facts: Vec<Atom>,
    rules: Vec<(Rule, CompiledRule, Vec<CompiledAtom>)>,
}

/// What an [`IncrementalGrounder::assert_batch`] /
/// [`IncrementalGrounder::retract_batch`] call (or their single-fact
/// wrappers) did to the ground program.
#[derive(Debug, Clone, Default)]
pub struct DeltaEffect {
    /// The last fact's atom id in the ground program (when it resolved).
    pub atom: Option<AtomId>,
    /// `false` when the call was a no-op (facts already present / absent).
    pub fresh: bool,
    /// Heads of rules added or patched, plus the fact atom itself — the
    /// atoms whose truth value may differ from the previous solve.
    /// Everything *outside* the dependency ancestors of these atoms
    /// provably keeps its truth value (relevance / splitting).
    pub changed: Vec<AtomId>,
    /// Body atoms of ground rules this call added or patched — the
    /// targets of dependency edges that did not necessarily exist
    /// before, which is exactly what
    /// [`crate::depgraph::Condensation::apply_delta`] needs to bound its
    /// repair window.
    pub new_edge_targets: Vec<AtomId>,
    /// Swap-remove renames of ground rule ids
    /// ([`crate::program::GroundProgram::remove_rule`] moving the last
    /// rule into the freed slot), in chronological order — the other
    /// half of the condensation-repair delta.
    pub renames: Vec<RuleRename>,
    /// Ground rule instances added by this call.
    pub new_rules: usize,
    /// Negative literals resurrected onto existing instances.
    pub resurrected: usize,
}

/// Outcome of [`IncrementalGrounder::retract_batch`] and
/// [`IncrementalGrounder::retract_rules`].
#[derive(Debug, Clone)]
pub enum RetractOutcome {
    /// The batch was applied warm; the effect describes the delta.
    Applied(DeltaEffect),
    /// Nothing was applied: the batch would shrink the active domain, so
    /// a warm retract is unsound — re-ground cold from the edited source
    /// program.
    DomainShrunk,
}

/// Outcome of [`IncrementalGrounder::assert_rules`].
#[derive(Debug, Clone)]
pub enum RuleAssertOutcome {
    /// The batch was applied warm; the effect describes the delta.
    Applied(DeltaEffect),
    /// Nothing was applied: the batch needs grounder state only a cold
    /// re-ground can build — the first *unsafe* rule of a program that
    /// was grounded without active-domain machinery (domain facts,
    /// per-term reference counts) has nowhere to hang its guards.
    NeedsCold,
}

/// The grounder with its working state retained for incremental updates.
pub struct IncrementalGrounder {
    options: GroundOptions,
    dom_pred: Symbol,
    need_dom: bool,
    /// Working base: term ids the envelope and compiled rules speak.
    base: HerbrandBase,
    envelope: Database,
    /// Compiled non-fact rules, parallel arrays (with `src_rules`).
    compiled: Vec<CompiledRule>,
    negs: Vec<Vec<CompiledAtom>>,
    /// The source (AST) form of each compiled rule, expressed against the
    /// grounder's own symbol store — what
    /// [`IncrementalGrounder::retract_rules`] matches structurally.
    src_rules: Vec<Rule>,
    prog: GroundProgram,
    /// Working-base (pred, args) → final atom id.
    atom_ids: FxHashMap<(Symbol, Tuple), AtomId>,
    /// Variable bindings of every instance ever emitted, grouped by rule
    /// index — grouping makes a rule retract's index remap two O(1) map
    /// moves instead of a rebuild of the whole set.
    emitted: FxHashMap<u32, FxHashSet<Box<[Option<ConstId>]>>>,
    /// Ground instance → index of the compiled rule it was emitted from
    /// (facts have no entry). This is the provenance
    /// [`IncrementalGrounder::retract_rules`] uses to drop exactly a
    /// retracted rule's instances.
    instance_src: FxHashMap<RuleId, u32>,
    /// Pruned negative literals by working-base key → instances to patch.
    dropped: FxHashMap<(Symbol, Tuple), Vec<RuleId>>,
    precise: bool,
    /// Set when a mutating call errored mid-delta (a rule or envelope
    /// budget hit): the ground program may hold a fact whose consequences
    /// were never instantiated. All further warm updates are refused
    /// ([`IncrementalGrounder::supports_incremental`] turns false) so the
    /// caller re-grounds cold.
    poisoned: bool,
    /// Active-domain bookkeeping (maintained only when `need_dom`): for
    /// every working-base term, how many current EDB facts contribute it
    /// as a subterm. A retraction that drops some term's count to zero
    /// (and the term is not kept alive by a rule constant) shrinks the
    /// active domain and needs a cold re-ground.
    dom_fact_refs: FxHashMap<ConstId, u32>,
    /// Per-term reference counts of **rule constants** (one count per
    /// syntactic occurrence across non-fact rules). Fact retracts cannot
    /// touch these, but a rule retract decrements them — a term whose
    /// fact refcount and rule refcount both reach zero leaves the active
    /// domain and forces a cold re-ground.
    dom_rule_consts: FxHashMap<ConstId, u32>,
    /// Atoms currently present as **EDB facts** (stated in the source
    /// program or asserted). A bodyless rule alone does not qualify: a
    /// rule instance whose guards were stripped and whose negative
    /// literals were pruned is *derived*, and retracting its head must
    /// not delete it.
    edb_facts: FxHashSet<AtomId>,
}

impl IncrementalGrounder {
    /// Ground `program`, retaining the working state. Produces exactly the
    /// [`GroundProgram`] that [`crate::ground::ground_with`] produces (that
    /// function now delegates here).
    pub fn new(program: &Program, options: &GroundOptions) -> Result<Self, GroundError> {
        let mut symbols = program.symbols.clone();
        let dom_pred = symbols.intern_fresh("$dom");
        let mut base = HerbrandBase::new();

        // ---- Pass 1: safety analysis & compilation ----------------------
        let mut compiled: Vec<CompiledRule> = Vec::new();
        let mut negs: Vec<Vec<CompiledAtom>> = Vec::new();
        let mut src_rules: Vec<Rule> = Vec::new();
        let mut facts: Vec<(Symbol, Tuple)> = Vec::new();
        let mut need_dom = false;
        for rule in &program.rules {
            if rule.is_fact() {
                let tuple: Vec<ConstId> = rule
                    .head
                    .args
                    .iter()
                    .map(|t| intern_ground_term(t, &mut base))
                    .collect();
                facts.push((rule.head.pred, tuple.into_boxed_slice()));
                continue;
            }
            let unsafe_vars = unsafe_variables(rule);
            let guards: Vec<CompiledAtom> = if unsafe_vars.is_empty() {
                vec![]
            } else {
                match options.safety {
                    SafetyPolicy::Reject => {
                        return Err(GroundError::UnsafeRule {
                            rule: crate::ast::display_rule(rule, &symbols),
                            variable: symbols.name(unsafe_vars[0]).to_string(),
                        });
                    }
                    SafetyPolicy::ActiveDomain => {
                        need_dom = true;
                        // Guards share the rule's slot assignment.
                        let probe = compile_rule(rule, &[]);
                        let mut slot_of: FxHashMap<Symbol, usize> = FxHashMap::default();
                        for (i, v) in probe.var_names.iter().enumerate() {
                            slot_of.insert(*v, i);
                        }
                        unsafe_vars
                            .iter()
                            .map(|v| CompiledAtom {
                                pred: dom_pred,
                                pats: vec![Pat::Var(slot_of[v])],
                            })
                            .collect()
                    }
                }
            };
            negs.push(compile_neg_atoms(rule));
            compiled.push(compile_rule(rule, &guards));
            // The grounder's symbol store starts as a clone of the
            // program's, so the rule can be retained verbatim.
            src_rules.push(rule.clone());
        }

        // ---- Active domain facts ----------------------------------------
        // Alongside the domain itself, keep the provenance needed to
        // decide later whether a retraction shrinks it: per-term fact
        // reference counts, and the terms pinned by non-fact rule
        // constants (which no retraction can remove).
        let mut dom_fact_refs: FxHashMap<ConstId, u32> = FxHashMap::default();
        let mut dom_rule_consts: FxHashMap<ConstId, u32> = FxHashMap::default();
        if need_dom {
            let mut dom_terms: Vec<ConstId> = Vec::new();
            let mut per_fact: Vec<ConstId> = Vec::new();
            for (_, tuple) in &facts {
                per_fact.clear();
                for &t in tuple.iter() {
                    collect_subterms(t, &base, &mut per_fact);
                }
                per_fact.sort_unstable();
                per_fact.dedup();
                for &t in &per_fact {
                    *dom_fact_refs.entry(t).or_insert(0) += 1;
                }
                dom_terms.extend_from_slice(&per_fact);
            }
            for rule in program.rules.iter().filter(|r| !r.is_fact()) {
                let start = dom_terms.len();
                collect_rule_consts(rule, &mut base, &mut dom_terms);
                for &t in &dom_terms[start..] {
                    *dom_rule_consts.entry(t).or_insert(0) += 1;
                }
            }
            dom_terms.sort_unstable();
            dom_terms.dedup();
            if dom_terms.is_empty() {
                return Err(GroundError::EmptyDomain);
            }
            for t in dom_terms {
                facts.push((dom_pred, vec![t].into_boxed_slice()));
            }
        }

        // ---- Pass 2: positive envelope ----------------------------------
        let limits = EvalLimits {
            max_tuples: options.max_envelope_tuples,
        };
        let mut envelope = evaluate_positive(&compiled, &facts, &mut base, &limits)?;
        index_all_columns(&mut envelope);

        let mut grounder = IncrementalGrounder {
            options: *options,
            dom_pred,
            need_dom,
            base,
            envelope,
            compiled,
            negs,
            src_rules,
            prog: GroundProgramBuilder::with_symbols(symbols).finish(),
            atom_ids: FxHashMap::default(),
            emitted: FxHashMap::default(),
            instance_src: FxHashMap::default(),
            dropped: FxHashMap::default(),
            precise: true,
            poisoned: false,
            dom_fact_refs,
            dom_rule_consts,
            edb_facts: FxHashSet::default(),
        };

        // ---- Pass 3: instantiate over the envelope ----------------------
        // EDB facts become bodyless ground rules (the synthetic domain
        // guard is not part of H).
        for (pred, tuple) in &facts {
            if *pred == grounder.dom_pred {
                continue;
            }
            let head = grounder.intern_final(*pred, tuple);
            grounder.edb_facts.insert(head);
            grounder.push_rule_checked(head, vec![], vec![])?;
        }
        let mut initial = DeltaEffect::default(); // discarded: nothing to repair yet
        for ix in 0..grounder.compiled.len() {
            let emissions = grounder.join_rule(ix, None);
            for e in emissions {
                grounder.admit(ix as u32, e, &mut initial)?;
            }
        }
        Ok(grounder)
    }

    /// The ground program in its current state.
    pub fn program(&self) -> &GroundProgram {
        &self.prog
    }

    /// Consume the grounder, keeping only the ground program.
    pub fn into_program(self) -> GroundProgram {
        self.prog
    }

    /// `false` when warm asserts would be unsound and the caller should
    /// re-ground cold: either some negative literal could not be keyed
    /// for resurrection (see module docs), or a previous mutating call
    /// errored mid-delta and left the program partially extended
    /// ([`IncrementalGrounder::is_poisoned`]).
    pub fn supports_incremental(&self) -> bool {
        self.precise && !self.poisoned
    }

    /// `true` after a mutating call errored mid-delta (rule or envelope
    /// budget): the ground program may hold a fact whose consequences
    /// were never instantiated, so it must not be solved or warm-updated
    /// — re-ground cold from the source program.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// `true` when grounding used active-domain guards. Retraction can
    /// then shrink the domain, and instances whose only positive subgoal
    /// was a stripped `$dom` guard would survive a warm retract that a
    /// cold re-ground would drop — callers should re-ground cold.
    pub fn uses_active_domain(&self) -> bool {
        self.need_dom
    }

    /// Translate an atom expressed against a foreign [`SymbolStore`] into
    /// this grounder's symbol space (mapping by name, interning as
    /// needed). The grounder's store starts as a clone of the source
    /// program's but the two diverge as soon as either side interns new
    /// names, so assert/retract go through this translation.
    pub fn import_atom(&mut self, atom: &Atom, from: &crate::symbol::SymbolStore) -> Atom {
        // Read-first: known names never force a copy of a symbol store
        // shared with a live program snapshot.
        self.prog.import_atom(atom, from)
    }

    /// Add one ground EDB fact — [`IncrementalGrounder::assert_batch`]
    /// with a single element.
    ///
    /// # Panics
    /// Panics if `atom` is not ground.
    pub fn assert_fact(
        &mut self,
        atom: &Atom,
        from: &crate::symbol::SymbolStore,
    ) -> Result<DeltaEffect, GroundError> {
        self.assert_batch(std::slice::from_ref(atom), from)
    }

    /// Add a batch of ground EDB facts, extending the envelope and the
    /// ground program by exactly the affected instances — with **one**
    /// semi-naive envelope round and one focused re-join pass for the
    /// whole batch, not one per fact. `from` is the symbol store the
    /// atoms were parsed against (see
    /// [`IncrementalGrounder::import_atom`]).
    ///
    /// On an error (rule or envelope budget), the grounder is left
    /// **poisoned**: the program may hold facts whose consequences were
    /// never instantiated, [`IncrementalGrounder::supports_incremental`]
    /// turns false, and the caller must re-ground cold from its source
    /// program before solving again.
    ///
    /// # Panics
    /// Panics if any atom is not ground.
    pub fn assert_batch(
        &mut self,
        atoms: &[Atom],
        from: &crate::symbol::SymbolStore,
    ) -> Result<DeltaEffect, GroundError> {
        let result = self.assert_batch_inner(atoms, from);
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn assert_batch_inner(
        &mut self,
        atoms: &[Atom],
        from: &crate::symbol::SymbolStore,
    ) -> Result<DeltaEffect, GroundError> {
        let mut effect = DeltaEffect::default();
        let mut seed: Vec<(Symbol, Tuple)> = Vec::with_capacity(atoms.len());
        let mut dom_terms: Vec<ConstId> = Vec::new();
        for atom in atoms {
            assert!(atom.is_ground(), "assert_batch needs ground atoms");
            let atom = self.import_atom(atom, from);
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut self.base))
                .collect();
            let final_atom = self.intern_final(atom.pred, &tuple);
            effect.atom = Some(final_atom);
            if !self.edb_facts.insert(final_atom) {
                continue; // already an EDB fact — no-op
            }
            effect.fresh = true;
            self.push_rule_checked(final_atom, vec![], vec![])?;
            effect.changed.push(final_atom);
            if self.need_dom {
                // One subterm walk serves both the refcounts and the
                // domain seed below.
                dom_terms.extend(self.count_fact_terms(&tuple, true));
            }
            seed.push((atom.pred, tuple));
        }
        if seed.is_empty() {
            return Ok(effect); // whole batch was a no-op
        }

        // One envelope delta for the whole batch: the facts plus any new
        // active-domain members they introduce.
        if self.need_dom {
            dom_terms.sort_unstable();
            dom_terms.dedup();
            for t in dom_terms {
                seed.push((self.dom_pred, vec![t].into_boxed_slice()));
            }
        }
        let limits = EvalLimits {
            max_tuples: self.options.max_envelope_tuples,
        };
        let delta = extend_positive(
            &self.compiled,
            &mut self.envelope,
            seed,
            &mut self.base,
            &limits,
        )?;
        index_all_columns(&mut self.envelope);

        // Resurrect negative literals whose atom just entered the envelope.
        for (pred, rel) in delta.iter() {
            for row in rel.rows() {
                if let Some(rules) = self.dropped.remove(&(pred, row.clone())) {
                    let neg_atom = self.intern_final(pred, row);
                    for rid in rules {
                        self.prog.add_neg_literal(rid, neg_atom);
                        effect.changed.push(self.prog.rule(rid).head);
                        effect.new_edge_targets.push(neg_atom);
                        effect.resurrected += 1;
                    }
                }
            }
        }

        // Instantiate the rules whose body touches a delta relation, with
        // the delta substituted at one focus position at a time; the
        // `emitted` set keeps re-joins from duplicating instances.
        for ix in 0..self.compiled.len() {
            let touches = self.compiled[ix]
                .body
                .iter()
                .any(|a| delta.relation(a.pred).is_some_and(|r| !r.is_empty()));
            if !touches {
                continue;
            }
            for focus in 0..self.compiled[ix].body.len() {
                let pred = self.compiled[ix].body[focus].pred;
                if delta.relation(pred).is_none_or(Relation::is_empty) {
                    continue;
                }
                let emissions = self.join_rule(ix, Some((focus, &delta)));
                for e in emissions {
                    if self.already_emitted(ix as u32, &e.sig) {
                        continue;
                    }
                    let head = self.admit(ix as u32, e, &mut effect)?;
                    effect.changed.push(head);
                    effect.new_rules += 1;
                }
            }
        }
        effect.changed.sort_unstable();
        effect.changed.dedup();
        effect.new_edge_targets.sort_unstable();
        effect.new_edge_targets.dedup();
        Ok(effect)
    }

    /// Remove a ground EDB fact (the bodyless rule for its atom), if
    /// present — **unconditionally warm**. The envelope intentionally
    /// stays a stale superset (see the module docs for why this is
    /// semantics-preserving), but under the active-domain policy a
    /// retraction that shrinks the domain is *not* preserved this way:
    /// use [`IncrementalGrounder::retract_batch`], which detects that
    /// case, unless the caller re-grounds cold on every retract anyway.
    pub fn retract_fact(
        &mut self,
        atom: &Atom,
        from: &crate::symbol::SymbolStore,
    ) -> Result<DeltaEffect, GroundError> {
        let atom = self.import_atom(atom, from);
        Ok(self.retract_one(&atom))
    }

    /// Remove a batch of ground EDB facts with one dirty-set merge —
    /// after checking that the batch keeps the active domain intact.
    /// When the batch would shrink the domain (some term of a retracted
    /// fact no longer occurs in any remaining fact or non-fact rule),
    /// **nothing is applied** and [`RetractOutcome::DomainShrunk`] is
    /// returned: the caller must re-ground cold from its edited source
    /// program. Programs grounded without active-domain guards never
    /// shrink.
    pub fn retract_batch(
        &mut self,
        atoms: &[Atom],
        from: &crate::symbol::SymbolStore,
    ) -> RetractOutcome {
        let atoms: Vec<Atom> = atoms.iter().map(|a| self.import_atom(a, from)).collect();
        if self.need_dom && self.batch_shrinks_domain(&atoms) {
            return RetractOutcome::DomainShrunk;
        }
        let mut effect = DeltaEffect::default();
        for atom in &atoms {
            let one = self.retract_one(atom);
            effect.fresh |= one.fresh;
            effect.atom = one.atom.or(effect.atom);
            effect.changed.extend(one.changed);
            effect.renames.extend(one.renames);
        }
        effect.changed.sort_unstable();
        effect.changed.dedup();
        RetractOutcome::Applied(effect)
    }

    /// Would retracting every (present) fact of `atoms` remove some term
    /// from the active domain? Simulates the batch's reference-count
    /// decrements so that two facts jointly holding a term's last two
    /// references are detected even though each alone would not shrink.
    fn batch_shrinks_domain(&mut self, atoms: &[Atom]) -> bool {
        let mut dec: FxHashMap<ConstId, u32> = FxHashMap::default();
        let mut seen: FxHashSet<AtomId> = FxHashSet::default();
        for atom in atoms {
            let Some(final_atom) = self.find_final_atom(atom) else {
                continue; // never materialized — retract is a no-op
            };
            if !self.edb_facts.contains(&final_atom) || !seen.insert(final_atom) {
                continue; // no-op, or the same fact twice in one batch
            }
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut self.base))
                .collect();
            let mut terms = Vec::new();
            for &t in tuple.iter() {
                collect_subterms(t, &self.base, &mut terms);
            }
            terms.sort_unstable();
            terms.dedup();
            for t in terms {
                *dec.entry(t).or_insert(0) += 1;
            }
        }
        dec.iter().any(|(t, &d)| {
            self.dom_rule_consts.get(t).copied().unwrap_or(0) == 0
                && self.dom_fact_refs.get(t).copied().unwrap_or(0) <= d
        })
    }

    /// Warm-retract one imported fact atom, maintaining the resurrection
    /// records and (under the active-domain policy) the term refcounts.
    fn retract_one(&mut self, atom: &Atom) -> DeltaEffect {
        assert!(atom.is_ground(), "retract needs a ground atom");
        let mut effect = DeltaEffect::default();
        let Some(final_atom) = self.find_final_atom(atom) else {
            return effect; // never materialized — nothing to retract
        };
        effect.atom = Some(final_atom);
        if !self.edb_facts.remove(&final_atom) {
            // Not an EDB fact. A bodyless *rule* with this head may well
            // exist (a derived instance whose guards were stripped and
            // negative literals pruned) — it is not retractable.
            return effect;
        }
        let Some(&rid) = self
            .prog
            .rules_with_head(final_atom)
            .iter()
            .find(|&&r| self.prog.rule(r).is_fact())
        else {
            return effect; // the fact rule itself is gone — nothing to do
        };
        if let Some(moved) = self.prog.remove_rule_logged(rid, &mut effect.renames) {
            self.fix_moved_rule(moved, rid);
        }
        if self.need_dom {
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut self.base))
                .collect();
            self.count_fact_terms(&tuple, false);
        }
        effect.fresh = true;
        effect.changed.push(final_atom);
        effect
    }

    /// Adjust the active-domain refcounts for one fact's subterms
    /// (deduplicated within the fact, so assert/retract stay symmetric).
    /// Returns the deduplicated subterm list so callers can reuse the
    /// walk (the assert path feeds it to the domain seed).
    fn count_fact_terms(&mut self, tuple: &[ConstId], add: bool) -> Vec<ConstId> {
        let mut terms = Vec::new();
        for &t in tuple {
            collect_subterms(t, &self.base, &mut terms);
        }
        terms.sort_unstable();
        terms.dedup();
        for &t in &terms {
            let slot = self.dom_fact_refs.entry(t).or_insert(0);
            if add {
                *slot += 1;
            } else {
                *slot = slot.saturating_sub(1);
            }
        }
        terms
    }

    /// Translate a rule expressed against a foreign [`SymbolStore`] into
    /// this grounder's symbol space (the rule-level analogue of
    /// [`IncrementalGrounder::import_atom`]).
    ///
    /// [`SymbolStore`]: crate::symbol::SymbolStore
    pub fn import_rule(&mut self, rule: &Rule, from: &crate::symbol::SymbolStore) -> Rule {
        // Read-first, like `import_atom`.
        self.prog.import_rule(rule, from)
    }

    /// Add a batch of rules (facts allowed — they take the EDB-fact
    /// path), extending the envelope and the ground program by exactly
    /// the affected instances. Each new rule is safety-analyzed and
    /// compiled as at load time, joined **once** over the existing
    /// envelope to seed what it can already derive, and the whole batch
    /// then runs one semi-naive envelope-delta round in which old and
    /// new rules participate alike; heads entering the envelope
    /// resurrect pruned negative literals, and old rules re-join focused
    /// on the delta. Rules identical to a retained one are skipped
    /// (idempotent).
    ///
    /// Returns [`RuleAssertOutcome::NeedsCold`] — with nothing applied —
    /// when the batch brings the first *unsafe* rule to a program that
    /// was grounded without the active-domain machinery. Validation
    /// errors (an unsafe rule under [`SafetyPolicy::Reject`]) also leave
    /// the grounder untouched; errors during the delta itself (rule or
    /// envelope budget) **poison** it, exactly like
    /// [`IncrementalGrounder::assert_batch`].
    pub fn assert_rules(
        &mut self,
        rules: &[Rule],
        from: &crate::symbol::SymbolStore,
    ) -> Result<RuleAssertOutcome, GroundError> {
        // Validation and compilation mutate nothing but the symbol
        // store, so a rejected batch leaves the grounder consistent.
        let Some(prepared) = self.prepare_rules(rules, from)? else {
            return Ok(RuleAssertOutcome::NeedsCold);
        };
        let result = self.assert_rules_inner(prepared);
        if result.is_err() {
            self.poisoned = true;
        }
        result.map(RuleAssertOutcome::Applied)
    }

    /// Import, safety-check, and compile an assert batch without touching
    /// the grounder's working state. `None` means the batch needs a cold
    /// re-ground (active-domain bootstrap).
    fn prepare_rules(
        &mut self,
        rules: &[Rule],
        from: &crate::symbol::SymbolStore,
    ) -> Result<Option<PreparedRules>, GroundError> {
        let mut prepared = PreparedRules {
            facts: Vec::new(),
            rules: Vec::new(),
        };
        for rule in rules {
            let rule = self.import_rule(rule, from);
            if rule.is_fact() {
                prepared.facts.push(rule.head);
                continue;
            }
            if self.src_rules.contains(&rule) || prepared.rules.iter().any(|(r, ..)| *r == rule) {
                continue; // an identical rule is already present
            }
            let unsafe_vars = unsafe_variables(&rule);
            let guards: Vec<CompiledAtom> = if unsafe_vars.is_empty() {
                vec![]
            } else {
                match self.options.safety {
                    SafetyPolicy::Reject => {
                        return Err(GroundError::UnsafeRule {
                            rule: crate::ast::display_rule(&rule, self.prog.symbols()),
                            variable: self.prog.symbols().name(unsafe_vars[0]).to_string(),
                        });
                    }
                    SafetyPolicy::ActiveDomain => {
                        if !self.need_dom {
                            // The load-time grounding had no unsafe rule,
                            // so none of the active-domain machinery
                            // (domain facts, refcounts) exists to hang
                            // the guards on — bootstrap cold.
                            return Ok(None);
                        }
                        let probe = compile_rule(&rule, &[]);
                        let mut slot_of: FxHashMap<Symbol, usize> = FxHashMap::default();
                        for (i, v) in probe.var_names.iter().enumerate() {
                            slot_of.insert(*v, i);
                        }
                        unsafe_vars
                            .iter()
                            .map(|v| CompiledAtom {
                                pred: self.dom_pred,
                                pats: vec![Pat::Var(slot_of[v])],
                            })
                            .collect()
                    }
                }
            };
            let negs = compile_neg_atoms(&rule);
            let compiled = compile_rule(&rule, &guards);
            prepared.rules.push((rule, compiled, negs));
        }
        Ok(Some(prepared))
    }

    fn assert_rules_inner(&mut self, prepared: PreparedRules) -> Result<DeltaEffect, GroundError> {
        let PreparedRules { facts, rules } = prepared;
        let mut effect = DeltaEffect::default();
        let mut seed: Vec<(Symbol, Tuple)> = Vec::new();
        let mut dom_terms: Vec<ConstId> = Vec::new();

        // Fact rules in the batch take the exact EDB-fact assert path.
        for atom in &facts {
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut self.base))
                .collect();
            let final_atom = self.intern_final(atom.pred, &tuple);
            effect.atom = Some(final_atom);
            if !self.edb_facts.insert(final_atom) {
                continue; // already an EDB fact — no-op
            }
            effect.fresh = true;
            self.push_rule_checked(final_atom, vec![], vec![])?;
            effect.changed.push(final_atom);
            if self.need_dom {
                dom_terms.extend(self.count_fact_terms(&tuple, true));
            }
            seed.push((atom.pred, tuple));
        }
        if self.need_dom {
            dom_terms.sort_unstable();
            dom_terms.dedup();
            for t in dom_terms {
                seed.push((self.dom_pred, vec![t].into_boxed_slice()));
            }
        }

        // Register the new rules. Their constants extend and pin the
        // active domain; the corresponding `$dom` tuples join the seed
        // (`extend_positive` drops tuples already in the envelope).
        let first_new = self.compiled.len();
        for (rule, compiled, negs) in rules {
            if self.need_dom {
                let mut consts = Vec::new();
                collect_rule_consts(&rule, &mut self.base, &mut consts);
                for &t in &consts {
                    *self.dom_rule_consts.entry(t).or_insert(0) += 1;
                    seed.push((self.dom_pred, vec![t].into_boxed_slice()));
                }
            }
            self.src_rules.push(rule);
            self.negs.push(negs);
            self.compiled.push(compiled);
            effect.fresh = true;
        }
        if !effect.fresh {
            return Ok(effect); // whole batch was a no-op
        }

        // Seed what the new rules can already derive from the existing
        // envelope: one full join per new rule. The delta rounds below
        // re-join focused on *new* tuples only, so derivations over
        // purely pre-existing tuples must be found here.
        let empty = Relation::new(0);
        for ix in first_new..self.compiled.len() {
            let head_pred = self.compiled[ix].head.pred;
            let head_pats = self.compiled[ix].head.pats.clone();
            let mut envs: Vec<Vec<Option<ConstId>>> = Vec::new();
            if self.compiled[ix].body.is_empty() {
                // A body-free rule (after compilation) fires once, as in
                // the initial grounding's zero-body pass.
                envs.push(vec![None; self.compiled[ix].nvars]);
            } else {
                let cr = &self.compiled[ix];
                let rels: Vec<&Relation> = cr
                    .body
                    .iter()
                    .map(|a| self.envelope.relation(a.pred).unwrap_or(&empty))
                    .collect();
                let mut env: Vec<Option<ConstId>> = vec![None; cr.nvars];
                join(&cr.body, &rels, &self.base, &mut env, &mut |e, _| {
                    envs.push(e.to_vec())
                });
            }
            for env in envs {
                let head: Vec<ConstId> = head_pats
                    .iter()
                    .map(|p| eval_pat(p, &env, &mut self.base))
                    .collect();
                seed.push((head_pred, head.into_boxed_slice()));
            }
        }

        // One envelope delta for the whole batch; old and new rules both
        // participate in the semi-naive rounds.
        let limits = EvalLimits {
            max_tuples: self.options.max_envelope_tuples,
        };
        let delta = extend_positive(
            &self.compiled,
            &mut self.envelope,
            seed,
            &mut self.base,
            &limits,
        )?;
        index_all_columns(&mut self.envelope);

        // Resurrect negative literals whose atom just entered the envelope.
        for (pred, rel) in delta.iter() {
            for row in rel.rows() {
                if let Some(rules) = self.dropped.remove(&(pred, row.clone())) {
                    let neg_atom = self.intern_final(pred, row);
                    for rid in rules {
                        self.prog.add_neg_literal(rid, neg_atom);
                        effect.changed.push(self.prog.rule(rid).head);
                        effect.new_edge_targets.push(neg_atom);
                        effect.resurrected += 1;
                    }
                }
            }
        }

        // Instantiate the new rules over the (now extended) envelope …
        for ix in first_new..self.compiled.len() {
            let emissions = self.join_rule(ix, None);
            for e in emissions {
                if self.already_emitted(ix as u32, &e.sig) {
                    continue;
                }
                let head = self.admit(ix as u32, e, &mut effect)?;
                effect.changed.push(head);
                effect.new_rules += 1;
            }
        }
        // … and re-join the pre-existing rules focused on the delta.
        for ix in 0..first_new {
            let touches = self.compiled[ix]
                .body
                .iter()
                .any(|a| delta.relation(a.pred).is_some_and(|r| !r.is_empty()));
            if !touches {
                continue;
            }
            for focus in 0..self.compiled[ix].body.len() {
                let pred = self.compiled[ix].body[focus].pred;
                if delta.relation(pred).is_none_or(Relation::is_empty) {
                    continue;
                }
                let emissions = self.join_rule(ix, Some((focus, &delta)));
                for e in emissions {
                    if self.already_emitted(ix as u32, &e.sig) {
                        continue;
                    }
                    let head = self.admit(ix as u32, e, &mut effect)?;
                    effect.changed.push(head);
                    effect.new_rules += 1;
                }
            }
        }
        effect.changed.sort_unstable();
        effect.changed.dedup();
        effect.new_edge_targets.sort_unstable();
        effect.new_edge_targets.dedup();
        Ok(effect)
    }

    /// Remove a batch of previously asserted or load-time rules (facts
    /// allowed — they take the EDB-fact retract path), dropping exactly
    /// the ground instances each rule emitted. Rules are matched
    /// **structurally** against their retained source form (same literal
    /// order, same variable names); unknown rules are ignored. The
    /// envelope stays a stale superset, which is semantics-preserving by
    /// the same argument as for fact retraction (see the module docs).
    /// Under the active-domain policy a batch whose facts and rule
    /// constants jointly drop some term's last references returns
    /// [`RetractOutcome::DomainShrunk`] with nothing applied: the caller
    /// must re-ground cold from its edited source program.
    pub fn retract_rules(
        &mut self,
        rules: &[Rule],
        from: &crate::symbol::SymbolStore,
    ) -> RetractOutcome {
        let imported: Vec<Rule> = rules.iter().map(|r| self.import_rule(r, from)).collect();
        let mut fact_atoms: Vec<Atom> = Vec::new();
        let mut ixs: Vec<usize> = Vec::new();
        for rule in &imported {
            if rule.is_fact() {
                fact_atoms.push(rule.head.clone());
            } else if let Some(ix) = self.src_rules.iter().position(|r| r == rule) {
                if !ixs.contains(&ix) {
                    ixs.push(ix);
                }
            }
        }
        if self.need_dom && self.rule_batch_shrinks_domain(&fact_atoms, &ixs) {
            return RetractOutcome::DomainShrunk;
        }
        let mut effect = DeltaEffect::default();
        for atom in &fact_atoms {
            let one = self.retract_one(atom);
            effect.fresh |= one.fresh;
            effect.atom = one.atom.or(effect.atom);
            effect.changed.extend(one.changed);
            effect.renames.extend(one.renames);
        }
        // Highest index first: each swap-remove fills the freed slot from
        // the end, which in descending order is never an index still
        // pending removal.
        ixs.sort_unstable();
        for &ix in ixs.iter().rev() {
            self.remove_compiled_rule(ix, &mut effect);
        }
        effect.changed.sort_unstable();
        effect.changed.dedup();
        RetractOutcome::Applied(effect)
    }

    /// Would retracting these facts *and* rules jointly remove some term
    /// from the active domain? Mirrors
    /// [`IncrementalGrounder::batch_shrinks_domain`], additionally
    /// simulating the rule-constant refcount decrements, so a fact and a
    /// rule jointly holding a term's last references are detected.
    fn rule_batch_shrinks_domain(&mut self, fact_atoms: &[Atom], ixs: &[usize]) -> bool {
        let mut fact_dec: FxHashMap<ConstId, u32> = FxHashMap::default();
        let mut seen: FxHashSet<AtomId> = FxHashSet::default();
        for atom in fact_atoms {
            let Some(final_atom) = self.find_final_atom(atom) else {
                continue;
            };
            if !self.edb_facts.contains(&final_atom) || !seen.insert(final_atom) {
                continue;
            }
            let tuple: Tuple = atom
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut self.base))
                .collect();
            let mut terms = Vec::new();
            for &t in tuple.iter() {
                collect_subterms(t, &self.base, &mut terms);
            }
            terms.sort_unstable();
            terms.dedup();
            for t in terms {
                *fact_dec.entry(t).or_insert(0) += 1;
            }
        }
        let mut rule_dec: FxHashMap<ConstId, u32> = FxHashMap::default();
        for &ix in ixs {
            let rule = self.src_rules[ix].clone();
            let mut consts = Vec::new();
            collect_rule_consts(&rule, &mut self.base, &mut consts);
            for t in consts {
                *rule_dec.entry(t).or_insert(0) += 1;
            }
        }
        let mut candidates: Vec<ConstId> =
            fact_dec.keys().chain(rule_dec.keys()).copied().collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.into_iter().any(|t| {
            let fr = self.dom_fact_refs.get(&t).copied().unwrap_or(0);
            let rr = self.dom_rule_consts.get(&t).copied().unwrap_or(0);
            let fd = fact_dec.get(&t).copied().unwrap_or(0);
            let rd = rule_dec.get(&t).copied().unwrap_or(0);
            (fr > 0 || rr > 0) && fr <= fd && rr <= rd
        })
    }

    /// Drop compiled rule `ix` and every ground instance it emitted,
    /// patching the instance provenance, the resurrection records, and
    /// the emission keys of the rule that takes over the freed slot.
    fn remove_compiled_rule(&mut self, ix: usize, effect: &mut DeltaEffect) {
        // 1. Remove the rule's ground instances.
        let mut rids: Vec<RuleId> = self
            .instance_src
            .iter()
            .filter(|&(_, &src)| src as usize == ix)
            .map(|(&rid, _)| rid)
            .collect();
        while let Some(rid) = rids.pop() {
            effect.changed.push(self.prog.rule(rid).head);
            self.instance_src.remove(&rid);
            for rules in self.dropped.values_mut() {
                rules.retain(|&r| r != rid);
            }
            if let Some(moved) = self.prog.remove_rule_logged(rid, &mut effect.renames) {
                self.fix_moved_rule(moved, rid);
                for r in rids.iter_mut() {
                    if *r == moved {
                        *r = rid;
                    }
                }
            }
        }
        self.dropped.retain(|_, rules| !rules.is_empty());
        // 2. Release the rule's pin on the active domain.
        if self.need_dom {
            let rule = self.src_rules[ix].clone();
            let mut consts = Vec::new();
            collect_rule_consts(&rule, &mut self.base, &mut consts);
            for t in consts {
                if let Some(n) = self.dom_rule_consts.get_mut(&t) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        // 3. Swap-remove the compiled arrays and remap everything keyed
        //    by the rule index that moved into the freed slot.
        let last = self.compiled.len() - 1;
        self.compiled.swap_remove(ix);
        self.negs.swap_remove(ix);
        self.src_rules.swap_remove(ix);
        effect.fresh = true;
        self.emitted.remove(&(ix as u32)); // the rule's emissions are forgotten
        if ix != last {
            if let Some(sigs) = self.emitted.remove(&(last as u32)) {
                self.emitted.insert(ix as u32, sigs);
            }
            for src in self.instance_src.values_mut() {
                if *src as usize == last {
                    *src = ix as u32;
                }
            }
        }
    }

    /// Test-only fault injection: mark the grounder poisoned as if a
    /// mutating call had errored mid-delta. Lets integration tests drive
    /// the recovery paths that are unreachable through the public API (a
    /// retained source program always re-grounds within the budgets that
    /// admitted it — the warm program is a superset of its cold
    /// re-ground).
    #[doc(hidden)]
    pub fn poison_for_testing(&mut self) {
        self.poisoned = true;
    }

    // ---- internals ------------------------------------------------------

    /// The swap-remove in [`GroundProgram::remove_rule`] renamed the
    /// former last rule `moved` to `now`; keep the resurrection records
    /// and the instance provenance pointing at it.
    fn fix_moved_rule(&mut self, moved: RuleId, now: RuleId) {
        for rules in self.dropped.values_mut() {
            for r in rules.iter_mut() {
                if *r == moved {
                    *r = now;
                }
            }
        }
        if let Some(src) = self.instance_src.remove(&moved) {
            self.instance_src.insert(now, src);
        }
    }

    fn intern_final(&mut self, pred: Symbol, args: &[ConstId]) -> AtomId {
        let key = (pred, args.to_vec().into_boxed_slice());
        if let Some(&id) = self.atom_ids.get(&key) {
            return id;
        }
        // Read-first reintern: terms already present in the final base
        // never force a copy of a base shared with a live snapshot.
        let (prog, base) = (&mut self.prog, &self.base);
        let new_args: Vec<ConstId> = args.iter().map(|&a| prog.reintern_term(a, base)).collect();
        let id = self.prog.intern_atom_ids(pred, &new_args);
        self.atom_ids.insert(key, id);
        id
    }

    /// Resolve an AST atom against the **final** base without interning.
    fn find_final_atom(&self, atom: &Atom) -> Option<AtomId> {
        fn find_term(t: &crate::ast::Term, base: &HerbrandBase) -> Option<ConstId> {
            match t {
                crate::ast::Term::Const(c) => base.find_term(&crate::atoms::GroundTerm::Const(*c)),
                crate::ast::Term::App(f, args) => {
                    let ids: Option<Vec<ConstId>> =
                        args.iter().map(|a| find_term(a, base)).collect();
                    base.find_term(&crate::atoms::GroundTerm::App(*f, ids?.into_boxed_slice()))
                }
                crate::ast::Term::Var(_) => None,
            }
        }
        let args: Option<Vec<ConstId>> = atom
            .args
            .iter()
            .map(|t| find_term(t, self.prog.base()))
            .collect();
        self.prog.base().find_atom(atom.pred, &args?)
    }

    /// Join rule `ix` over the envelope — or, when `focus` names a body
    /// position and a delta database, with the delta substituted there —
    /// and collect the emissions.
    fn join_rule(&self, ix: usize, focus: Option<(usize, &Database)>) -> Vec<Emission> {
        let cr = &self.compiled[ix];
        let negs = &self.negs[ix];
        let empty = Relation::new(0);
        let rels: Vec<&Relation> = cr
            .body
            .iter()
            .enumerate()
            .map(|(i, atom)| {
                let db = match focus {
                    Some((f, delta)) if i == f => delta,
                    _ => &self.envelope,
                };
                db.relation(atom.pred).unwrap_or(&empty)
            })
            .collect();
        let mut env: Vec<Option<ConstId>> = vec![None; cr.nvars];
        let mut emissions: Vec<Emission> = Vec::new();
        let dom_pred = self.dom_pred;
        let envelope = &self.envelope;
        join(&cr.body, &rels, &self.base, &mut env, &mut |env, base| {
            let head: Vec<ConstId> = cr
                .head
                .pats
                .iter()
                .map(|p| try_eval_pat(p, env, base).expect("head term is in the envelope"))
                .collect();
            let pos: Vec<Vec<ConstId>> = cr
                .body
                .iter()
                .filter(|a| a.pred != dom_pred)
                .map(|a| {
                    a.pats
                        .iter()
                        .map(|p| try_eval_pat(p, env, base).expect("pos body term matched"))
                        .collect()
                })
                .collect();
            let neg: Vec<NegResolution> = negs
                .iter()
                .map(|a| {
                    let args: Option<Vec<ConstId>> =
                        a.pats.iter().map(|p| try_eval_pat(p, env, base)).collect();
                    match args {
                        None => NegResolution::Unresolved,
                        Some(args) if envelope.contains(a.pred, &args) => {
                            NegResolution::Inside(args)
                        }
                        Some(args) => NegResolution::Outside(a.pred, args.into_boxed_slice()),
                    }
                })
                .collect();
            emissions.push(Emission {
                sig: env.to_vec().into_boxed_slice(),
                head,
                pos,
                neg,
            });
        });
        emissions
    }

    /// Intern one emission's atoms and append its ground rule, recording
    /// the binding signature, any pruned negative literals, and the new
    /// instance's dependency-edge targets (into `effect`, for the
    /// caller's condensation repair). Returns the instance's head atom.
    fn admit(
        &mut self,
        ix: u32,
        e: Emission,
        effect: &mut DeltaEffect,
    ) -> Result<AtomId, GroundError> {
        let head = self.intern_final(self.compiled[ix as usize].head.pred, &e.head);
        let body_preds: Vec<Symbol> = self.compiled[ix as usize]
            .body
            .iter()
            .filter(|a| a.pred != self.dom_pred)
            .map(|a| a.pred)
            .collect();
        let mut pos_ids = Vec::with_capacity(e.pos.len());
        for (pred, args) in body_preds.into_iter().zip(e.pos.iter()) {
            pos_ids.push(self.intern_final(pred, args));
        }
        let neg_preds: Vec<Symbol> = self.negs[ix as usize].iter().map(|a| a.pred).collect();
        let mut neg_ids = Vec::new();
        let mut pruned: Vec<(Symbol, Tuple)> = Vec::new();
        for (k, res) in e.neg.into_iter().enumerate() {
            match res {
                NegResolution::Inside(args) => {
                    neg_ids.push(self.intern_final(neg_preds[k], &args));
                }
                NegResolution::Outside(pred, args) => pruned.push((pred, args)),
                NegResolution::Unresolved => {
                    self.precise = false;
                }
            }
        }
        effect.new_edge_targets.extend_from_slice(&pos_ids);
        effect.new_edge_targets.extend_from_slice(&neg_ids);
        let rid = self.push_rule_checked(head, pos_ids, neg_ids)?;
        for key in pruned {
            self.dropped.entry(key).or_default().push(rid);
        }
        self.emitted.entry(ix).or_default().insert(e.sig);
        self.instance_src.insert(rid, ix);
        Ok(head)
    }

    fn already_emitted(&self, ix: u32, sig: &[Option<ConstId>]) -> bool {
        self.emitted.get(&ix).is_some_and(|sigs| sigs.contains(sig))
    }

    fn push_rule_checked(
        &mut self,
        head: AtomId,
        pos: Vec<AtomId>,
        neg: Vec<AtomId>,
    ) -> Result<RuleId, GroundError> {
        if self.prog.rule_count() + 1 > self.options.max_ground_rules {
            return Err(GroundError::RuleBudgetExceeded {
                limit: self.options.max_ground_rules,
            });
        }
        Ok(self.prog.push_rule(head, pos, neg))
    }
}

fn index_all_columns(db: &mut Database) {
    let preds: Vec<Symbol> = db.iter().map(|(p, _)| p).collect();
    for p in preds {
        if let Some(rel) = db.relation(p) {
            let arity = rel.arity();
            let rel = db.relation_mut(p, arity);
            for col in 0..arity {
                rel.ensure_index(col);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground_with, GroundOptions};
    use crate::parser::{parse_atom_into, parse_program};

    fn assert_same_programs(a: &GroundProgram, b: &GroundProgram) {
        // Compare as (displayed) rule sets — atom id assignment may differ
        // between a warm and a cold grounding.
        let mut ra: Vec<String> = a.to_string().lines().map(String::from).collect();
        let mut rb: Vec<String> = b.to_string().lines().map(String::from).collect();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn initial_grounding_matches_batch() {
        for src in [
            "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).",
            "p :- not q. q :- not p. r :- p, q.",
            "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y). e(a,b). e(b,c).",
        ] {
            let program = parse_program(src).unwrap();
            let options = GroundOptions::default();
            let batch = ground_with(&program, &options).unwrap();
            let incr = IncrementalGrounder::new(&program, &options).unwrap();
            assert_same_programs(&batch, incr.program());
        }
    }

    #[test]
    fn assert_equals_cold_ground_of_concatenated_text() {
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a).";
        let mut program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        assert!(g.supports_incremental());

        // move(b, c) resurrects nothing; move(c, d) must resurrect the
        // pruned `not wins(c)` on the wins(b) :- move(b,c) instance.
        for fact in ["move(b, c)", "move(c, d)"] {
            let atom = parse_atom_into(fact, &mut program).unwrap();
            let effect = g.assert_fact(&atom, &program.symbols).unwrap();
            assert!(effect.fresh);
        }
        let cold_src = format!("{base_src} move(b, c). move(c, d).");
        let cold = ground_with(&parse_program(&cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn resurrection_restores_pruned_negative_literals() {
        let mut program = parse_program("wins(X) :- move(X, Y), not wins(Y). move(b, c).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        // Initially `not wins(c)` is pruned: wins(c) has no derivation.
        let wb = g.program().find_atom_by_name("wins", &["b"]).unwrap();
        let rb = g.program().rules_with_head(wb)[0];
        assert!(g.program().rule(rb).neg.is_empty());

        let atom = parse_atom_into("move(c, d)", &mut program).unwrap();
        let effect = g.assert_fact(&atom, &program.symbols).unwrap();
        assert!(effect.resurrected >= 1);
        let wc = g.program().find_atom_by_name("wins", &["c"]).unwrap();
        let rb = g.program().rules_with_head(wb)[0];
        assert_eq!(g.program().rule(rb).neg.as_ref(), &[wc]);
    }

    #[test]
    fn assert_is_idempotent() {
        let mut program = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("e(b)", &mut program).unwrap();
        assert!(g.assert_fact(&atom, &program.symbols).unwrap().fresh);
        let before = g.program().rule_count();
        assert!(!g.assert_fact(&atom, &program.symbols).unwrap().fresh);
        assert_eq!(g.program().rule_count(), before);
    }

    #[test]
    fn retract_removes_the_fact_rule_only() {
        let mut program = parse_program("p(X) :- e(X). e(a). e(b).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("e(a)", &mut program).unwrap();
        let effect = g.retract_fact(&atom, &program.symbols).unwrap();
        assert!(effect.fresh);
        let ea = g.program().find_atom_by_name("e", &["a"]).unwrap();
        assert!(g.program().rules_with_head(ea).is_empty());
        // Retracting again is a no-op.
        assert!(!g.retract_fact(&atom, &program.symbols).unwrap().fresh);
        // The instance p(a) :- e(a) survives but can never fire.
        let pa = g.program().find_atom_by_name("p", &["a"]).unwrap();
        assert_eq!(g.program().rules_with_head(pa).len(), 1);
    }

    #[test]
    fn retract_then_assert_round_trips() {
        let mut program = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("e(a)", &mut program).unwrap();
        assert!(g.retract_fact(&atom, &program.symbols).unwrap().fresh);
        assert!(g.assert_fact(&atom, &program.symbols).unwrap().fresh);
        let ea = g.program().find_atom_by_name("e", &["a"]).unwrap();
        let facts = g
            .program()
            .rules_with_head(ea)
            .iter()
            .filter(|&&r| g.program().rule(r).is_fact())
            .count();
        assert_eq!(facts, 1);
    }

    #[test]
    fn batch_assert_equals_cold_ground_of_concatenated_text() {
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(a, b).";
        let mut program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let batch: Vec<_> = ["move(b, c)", "move(c, d)", "move(d, e)"]
            .iter()
            .map(|f| parse_atom_into(f, &mut program).unwrap())
            .collect();
        let effect = g.assert_batch(&batch, &program.symbols).unwrap();
        assert!(effect.fresh);
        assert!(effect.new_rules >= 3);
        let cold_src = format!("{base_src} move(b, c). move(c, d). move(d, e).");
        let cold = ground_with(&parse_program(&cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn batch_with_duplicates_and_noops_is_idempotent() {
        let mut program = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let batch: Vec<_> = ["e(a)", "e(b)", "e(b)"]
            .iter()
            .map(|f| parse_atom_into(f, &mut program).unwrap())
            .collect();
        let effect = g.assert_batch(&batch, &program.symbols).unwrap();
        assert!(effect.fresh);
        let cold = ground_with(
            &parse_program("p(X) :- e(X). e(a). e(b).").unwrap(),
            &options,
        )
        .unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn budget_error_mid_batch_poisons_the_grounder() {
        // Budget: the base program grounds in 4 rules; the batch would
        // need many more, erroring partway through instantiation.
        let mut program = parse_program("p(X, Y) :- d(X), d(Y). d(a).").unwrap();
        let options = GroundOptions {
            max_ground_rules: 6,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        assert!(g.supports_incremental());
        let batch: Vec<_> = ["d(b)", "d(c)", "d(e)"]
            .iter()
            .map(|f| parse_atom_into(f, &mut program).unwrap())
            .collect();
        let err = g.assert_batch(&batch, &program.symbols);
        assert!(err.is_err());
        assert!(g.is_poisoned());
        assert!(!g.supports_incremental(), "poisoned ⇒ no more warm deltas");
    }

    #[test]
    fn domain_preserving_retraction_stays_warm() {
        let mut program = parse_program("p(X) :- not q(X). r(c). r(d). s(d).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        // d is still held by s(d): retracting r(d) keeps the domain.
        let atom = parse_atom_into("r(d)", &mut program).unwrap();
        match g.retract_batch(std::slice::from_ref(&atom), &program.symbols) {
            RetractOutcome::Applied(effect) => assert!(effect.fresh),
            RetractOutcome::DomainShrunk => panic!("d is kept alive by s(d)"),
        }
        // Now s(d) holds the last reference: retracting it shrinks.
        let atom = parse_atom_into("s(d)", &mut program).unwrap();
        match g.retract_batch(std::slice::from_ref(&atom), &program.symbols) {
            RetractOutcome::DomainShrunk => {}
            RetractOutcome::Applied(_) => panic!("last reference to d must shrink the domain"),
        }
        // Nothing was applied: the fact rule is still present.
        let sd = g.program().find_atom_by_name("s", &["d"]).unwrap();
        assert!(g
            .program()
            .rules_with_head(sd)
            .iter()
            .any(|&r| g.program().rule(r).is_fact()));
    }

    #[test]
    fn derived_bodyless_rules_are_not_retractable() {
        // `p :- not q.` grounds to the bodyless rule `p.` because q is
        // outside the envelope and the literal is pruned — but p is
        // DERIVED, not an EDB fact, and retracting it must be a no-op.
        let mut program = parse_program("p :- not q. r.").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("p", &mut program).unwrap();
        let effect = g.retract_fact(&atom, &program.symbols).unwrap();
        assert!(!effect.fresh, "derived conclusions cannot be retracted");
        let p = g.program().find_atom_by_name("p", &[]).unwrap();
        assert_eq!(g.program().rules_with_head(p).len(), 1);

        // The same under the active-domain policy, where the stripped
        // `$dom` guard also empties the body.
        let mut program = parse_program("p(X) :- not q(X). ok :- p(c). r(c).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("p(c)", &mut program).unwrap();
        match g.retract_batch(std::slice::from_ref(&atom), &program.symbols) {
            RetractOutcome::Applied(effect) => {
                assert!(!effect.fresh, "p(c) was never stated or asserted")
            }
            RetractOutcome::DomainShrunk => panic!("a no-op cannot shrink the domain"),
        }
        let pc = g.program().find_atom_by_name("p", &["c"]).unwrap();
        assert!(
            !g.program().rules_with_head(pc).is_empty(),
            "the derived instance survives"
        );
    }

    #[test]
    fn rule_constants_pin_the_domain() {
        // c occurs syntactically in a non-fact rule: retracting r(c)
        // cannot shrink the domain.
        let mut program = parse_program("p(X) :- not q(X). ok :- p(c). r(c). r(d).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("r(c)", &mut program).unwrap();
        match g.retract_batch(std::slice::from_ref(&atom), &program.symbols) {
            RetractOutcome::Applied(effect) => assert!(effect.fresh),
            RetractOutcome::DomainShrunk => panic!("c is pinned by `ok :- p(c)`"),
        }
    }

    #[test]
    fn joint_last_references_shrink_even_when_each_alone_would_not() {
        let mut program = parse_program("p(X) :- not q(X). r(d). s(d).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let batch: Vec<_> = ["r(d)", "s(d)"]
            .iter()
            .map(|f| parse_atom_into(f, &mut program).unwrap())
            .collect();
        match g.retract_batch(&batch, &program.symbols) {
            RetractOutcome::DomainShrunk => {}
            RetractOutcome::Applied(_) => panic!("the batch drops d's last two references"),
        }
    }

    fn parse_rules(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn rule_assert_equals_cold_ground_of_concatenated_text() {
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();

        // A rule joining purely over the existing envelope, plus a rule
        // that recursively extends it.
        let delta_src = "reach(Y) :- move(a, Y). reach(Y) :- move(X, Y), reach(X).";
        let delta = parse_rules(delta_src);
        let effect = match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => e,
            RuleAssertOutcome::NeedsCold => panic!("safe rules stay warm"),
        };
        assert!(effect.fresh);
        assert!(effect.new_rules >= 4, "reach(b), reach(a), reach(c) chains");
        let cold_src = format!("{base_src} {delta_src}");
        let cold = ground_with(&parse_program(&cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn rule_assert_enlarging_envelope_resurrects_pruned_negatives() {
        // `not wins(c)` is pruned at load (wins(c) underivable); the new
        // rule derives wins(c) via bonus, so the literal must come back.
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(b, c). bonus(c).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let wb = g.program().find_atom_by_name("wins", &["b"]).unwrap();
        assert!(g
            .program()
            .rule(g.program().rules_with_head(wb)[0])
            .neg
            .is_empty());

        let delta = parse_rules("wins(X) :- bonus(X).");
        let effect = match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => e,
            RuleAssertOutcome::NeedsCold => panic!("safe rule stays warm"),
        };
        assert!(effect.resurrected >= 1, "not wins(c) must resurrect");
        let cold_src = format!("{base_src} wins(X) :- bonus(X).");
        let cold = ground_with(&parse_program(&cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn rule_assert_is_idempotent() {
        let base = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&base, &options).unwrap();
        let delta = parse_rules("q(X) :- e(X).");
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(e.fresh),
            RuleAssertOutcome::NeedsCold => panic!(),
        }
        let before = g.program().rule_count();
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(!e.fresh, "identical rule is a no-op"),
            RuleAssertOutcome::NeedsCold => panic!(),
        }
        assert_eq!(g.program().rule_count(), before);
    }

    #[test]
    fn rule_retract_drops_exactly_its_instances() {
        let base_src = "p(X) :- e(X). q(X) :- e(X). e(a). e(b).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("q(X) :- e(X).");
        let effect = match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::Applied(e) => e,
            RetractOutcome::DomainShrunk => panic!("no active domain in play"),
        };
        assert!(effect.fresh);
        let qa = g.program().find_atom_by_name("q", &["a"]).unwrap();
        let qb = g.program().find_atom_by_name("q", &["b"]).unwrap();
        assert!(g.program().rules_with_head(qa).is_empty());
        assert!(g.program().rules_with_head(qb).is_empty());
        let pa = g.program().find_atom_by_name("p", &["a"]).unwrap();
        assert_eq!(g.program().rules_with_head(pa).len(), 1, "p untouched");
        // Retracting again is a no-op.
        match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::Applied(e) => assert!(!e.fresh),
            RetractOutcome::DomainShrunk => panic!(),
        }
    }

    #[test]
    fn rule_retract_then_assert_round_trips() {
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("wins(X) :- move(X, Y), not wins(Y).");
        match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::Applied(e) => assert!(e.fresh),
            RetractOutcome::DomainShrunk => panic!(),
        }
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(e.fresh),
            RuleAssertOutcome::NeedsCold => panic!(),
        }
        // The envelope stayed a (here: exact) superset, so the program
        // round-trips to the cold grounding.
        let cold = ground_with(&parse_program(base_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn unsafe_rule_assert_is_rejected_without_poisoning() {
        let base = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&base, &options).unwrap();
        let delta = parse_rules("bad(X) :- not e(X).");
        let err = g.assert_rules(&delta.rules, &delta.symbols);
        assert!(matches!(err, Err(GroundError::UnsafeRule { .. })));
        assert!(
            !g.is_poisoned(),
            "validation errors leave the grounder clean"
        );
        assert!(g.supports_incremental());
    }

    #[test]
    fn first_unsafe_rule_needs_cold_bootstrap_under_active_domain() {
        // The loaded program is safe, so no active-domain machinery was
        // built; the first unsafe rule cannot be guarded warm.
        let base = parse_program("p(X) :- e(X). e(a).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&base, &options).unwrap();
        let delta = parse_rules("q(X) :- not p(X).");
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::NeedsCold => {}
            RuleAssertOutcome::Applied(_) => panic!("bootstrap requires a cold re-ground"),
        }
        assert!(g.supports_incremental(), "nothing was applied");
    }

    #[test]
    fn unsafe_rule_assert_stays_warm_when_domain_machinery_exists() {
        let base = parse_program("p(X) :- not q(X). r(c). r(d).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&base, &options).unwrap();
        let delta = parse_rules("s(X) :- not p(X).");
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(e.fresh),
            RuleAssertOutcome::NeedsCold => panic!("the domain machinery exists"),
        }
        let cold_src = "p(X) :- not q(X). r(c). r(d). s(X) :- not p(X).";
        let cold = ground_with(&parse_program(cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn rule_constants_pin_and_release_the_domain() {
        // `ok :- p(c)` pins c; retracting that rule drops the pin, and c
        // has no other reference — the domain shrinks.
        let base_src = "p(X) :- not q(X). ok :- p(c). r(d).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("ok :- p(c).");
        match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::DomainShrunk => {}
            RetractOutcome::Applied(_) => panic!("c's last reference leaves with the rule"),
        }

        // With a fact also holding c, the same retract stays warm.
        let program = parse_program("p(X) :- not q(X). ok :- p(c). r(c). r(d).").unwrap();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("ok :- p(c).");
        match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::Applied(e) => assert!(e.fresh),
            RetractOutcome::DomainShrunk => panic!("c is still held by r(c)"),
        }
    }

    #[test]
    fn rule_and_fact_joint_last_references_shrink_the_domain() {
        // The batch retracts the fact r(c) *and* the rule pinning c: each
        // alone keeps c in the domain, jointly they drop it.
        let program = parse_program("p(X) :- not q(X). ok :- p(c). r(c). r(d).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("ok :- p(c). r(c).");
        match g.retract_rules(&delta.rules, &delta.symbols) {
            RetractOutcome::DomainShrunk => {}
            RetractOutcome::Applied(_) => panic!("joint last references must shrink"),
        }
    }

    #[test]
    fn mixed_rule_and_fact_batch_matches_cold_ground() {
        let base_src = "wins(X) :- move(X, Y), not wins(Y). move(a, b).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let delta = parse_rules("wins(X) :- bonus(X). bonus(b). move(b, c).");
        match g.assert_rules(&delta.rules, &delta.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(e.fresh),
            RuleAssertOutcome::NeedsCold => panic!(),
        }
        let cold_src = format!("{base_src} wins(X) :- bonus(X). bonus(b). move(b, c).");
        let cold = ground_with(&parse_program(&cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }

    #[test]
    fn fact_retract_after_rule_retract_keeps_provenance_consistent() {
        // Interleave rule and fact removals so the swap-remove renames
        // cross both maps; the final program must match a cold ground.
        let base_src = "p(X) :- e(X). q(X) :- e(X), not p(X). e(a). e(b). e(c).";
        let program = parse_program(base_src).unwrap();
        let options = GroundOptions::default();
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let rule = parse_rules("p(X) :- e(X).");
        match g.retract_rules(&rule.rules, &rule.symbols) {
            RetractOutcome::Applied(e) => assert!(e.fresh),
            RetractOutcome::DomainShrunk => panic!(),
        }
        let mut program2 = parse_program("").unwrap();
        let ea = parse_atom_into("e(a)", &mut program2).unwrap();
        assert!(g.retract_fact(&ea, &program2.symbols).unwrap().fresh);
        let rule2 = parse_rules("r(X) :- e(X).");
        match g.assert_rules(&rule2.rules, &rule2.symbols).unwrap() {
            RuleAssertOutcome::Applied(e) => assert!(e.fresh),
            RuleAssertOutcome::NeedsCold => panic!(),
        }
        // Cold reference: the envelope kept by the warm path is a stale
        // superset, so compare models not programs — here the q(a)
        // instance survives warm but can never fire (e(a) retracted).
        let qa = g.program().find_atom_by_name("q", &["a"]);
        if let Some(qa) = qa {
            // q(a)'s remaining instances all need e(a), which has no rules.
            for &rid in g.program().rules_with_head(qa) {
                assert!(!g.program().rule(rid).pos.is_empty());
            }
        }
        let rb = g.program().find_atom_by_name("r", &["b"]).unwrap();
        assert!(!g.program().rules_with_head(rb).is_empty());
    }

    #[test]
    fn active_domain_asserts_extend_the_domain() {
        let mut program = parse_program("p(X) :- not q(X). q(a). r(b).").unwrap();
        let options = GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        };
        let mut g = IncrementalGrounder::new(&program, &options).unwrap();
        let atom = parse_atom_into("r(c)", &mut program).unwrap();
        g.assert_fact(&atom, &program.symbols).unwrap();
        let cold_src = "p(X) :- not q(X). q(a). r(b). r(c).";
        let cold = ground_with(&parse_program(cold_src).unwrap(), &options).unwrap();
        assert_same_programs(g.program(), &cold);
    }
}
