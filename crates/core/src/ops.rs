//! The operators of Sections 3–5 and 8.4.
//!
//! All operators act on a fixed [`GroundProgram`]; sets of *negative
//! literals* are represented by the [`AtomSet`] of their atoms (the tilde
//! names of the paper: `Ĩ ⊆ H̃`), and sets of positive literals by plain
//! atom sets.
//!
//! | paper | here | definition |
//! |---|---|---|
//! | `C_P(I⁺, Ĩ)` | [`c_p`] | Def. 3.6, one-step immediate consequence |
//! | `T_P(I)` | [`t_p`] | Def. 3.7, `C_P` on a partial interpretation |
//! | `S_P(Ĩ)` | [`s_p`] | Def. 4.2, eventual consequence `T_{P∪Ĩ}↑ω(∅)` |
//! | `S̃_P(Ĩ)` | [`s_tilde`] | Def. 4.2, `conj(S_P(Ĩ))` — the stability transformation |
//! | `A_P(Ĩ)` | [`a_p`] | Def. 5.1, `S̃_P(S̃_P(Ĩ))` — the alternating transformation |
//! | `Q_P(I)` | [`q_p_op`] | §8.4, `S_P(S̃_P(Ī))` |
//! | `Q(J)` | [`q_op`] | §8.4 (Immerman form), `T_P(J ∔ S̃_P(J̄))` |
//!
//! `S_P` is monotone, hence `S̃_P` is *antimonotone* — the property the
//! paper singles out as the heart of the intractability of stable models —
//! and the twice-composed `A_P` is monotone again. These facts are
//! property-tested in this crate and in the workspace integration tests.

use afp_datalog::bitset::AtomSet;
use afp_datalog::horn;
use afp_datalog::program::GroundProgram;

use crate::interp::PartialModel;

/// `C_P(I⁺, Ĩ)` (Definition 3.6): heads of rules whose positive subgoals
/// all lie in `I⁺` and whose negated subgoals all lie in `Ĩ`. A single
/// application; the combined argument need not be consistent.
pub fn c_p(prog: &GroundProgram, pos: &AtomSet, neg: &AtomSet) -> AtomSet {
    horn::immediate_consequences(prog, pos, neg)
}

/// `T_P(I)` (Definition 3.7): the immediate consequence transformation on a
/// partial interpretation, `T_P(I) = C_P(I⁺, Ĩ)`. Produces positive
/// literals only; negative conclusions are drawn by a separate mechanism
/// (unfounded sets in Section 6, the alternating fixpoint in Section 5).
pub fn t_p(prog: &GroundProgram, interp: &PartialModel) -> AtomSet {
    c_p(prog, &interp.pos, &interp.neg)
}

/// `S_P(Ĩ)` (Definition 4.2): the eventual consequence mapping — the least
/// fixpoint of `T_{P∪Ĩ}`, treating the negative literals `Ĩ` as extra EDB
/// facts (Figure 3). Monotone in `Ĩ`; computed in linear time.
pub fn s_p(prog: &GroundProgram, i_tilde: &AtomSet) -> AtomSet {
    horn::eventual_consequences(prog, i_tilde)
}

/// `S̃_P(Ĩ) = conj(S_P(Ĩ))` (Definition 4.2): the stability
/// transformation recast on sets of negative literals. Its fixpoints are
/// exactly the stable models of Gelfond–Lifschitz (represented by their
/// false atoms); it is antimonotone.
pub fn s_tilde(prog: &GroundProgram, i_tilde: &AtomSet) -> AtomSet {
    s_p(prog, i_tilde).complement()
}

/// `A_P(Ĩ) = S̃_P(S̃_P(Ĩ))` (Definition 5.1): the alternating
/// transformation. Monotone, being the composition of two antimonotone
/// maps; its least fixpoint is the negative portion of the well-founded
/// partial model (Theorem 7.8).
pub fn a_p(prog: &GroundProgram, i_tilde: &AtomSet) -> AtomSet {
    let over = s_tilde(prog, i_tilde);
    s_tilde(prog, &over)
}

/// `Q_P(I) = S_P(S̃_P(Ī))` on sets of **positive** literals (Section 8.4).
/// Iterating from `I₀ = S_P(∅̃)` yields `Iₙ = S_P(A_Pⁿ(∅̃))`
/// (Lemma 8.9), converging to the positive part of the AFP model.
pub fn q_p_op(prog: &GroundProgram, i_pos: &AtomSet) -> AtomSet {
    let i_bar = i_pos.complement(); // conj: negative version of H − I
    let s = s_tilde(prog, &i_bar);
    s_p(prog, &s)
}

/// `Q(J) = T_P(J ∔ S̃_P(J̄))` — the one-step operator extracted from
/// Immerman's simultaneous-fixpoint lemma (Section 8.4). Its least fixpoint
/// `J_ω` equals `I_ω` of [`q_p_op`] (Theorem 8.10), i.e. the positive part
/// of the AFP model; this equality is what places the alternating fixpoint
/// inside FP on finite structures.
pub fn q_op(prog: &GroundProgram, j_pos: &AtomSet) -> AtomSet {
    let j_bar = j_pos.complement();
    let s = s_tilde(prog, &j_bar);
    c_p(prog, j_pos, &s)
}

/// Least fixpoint of a monotone operator on positive sets by iteration from
/// the empty set. Used for the Section 8.4 operators in tests and benches.
pub fn lfp_positive(
    prog: &GroundProgram,
    mut op: impl FnMut(&GroundProgram, &AtomSet) -> AtomSet,
) -> AtomSet {
    let mut current = prog.empty_set();
    loop {
        let next = op(prog, &current);
        if next == current {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::program::parse_ground;

    fn named_set(prog: &GroundProgram, names: &[&str]) -> AtomSet {
        let mut s = prog.empty_set();
        for n in names {
            let id = prog
                .find_atom_by_name(n, &[])
                .unwrap_or_else(|| panic!("unknown atom {n}"));
            s.insert(id.0);
        }
        s
    }

    #[test]
    fn s_tilde_is_antimonotone() {
        let g = parse_ground("p :- not q. q :- not p. r :- p. s :- not r.");
        let small = g.empty_set();
        let big = named_set(&g, &["q", "r"]);
        assert!(small.is_subset(&big));
        let st_small = s_tilde(&g, &small);
        let st_big = s_tilde(&g, &big);
        assert!(st_big.is_subset(&st_small), "S̃_P must reverse ⊆");
    }

    #[test]
    fn a_p_is_monotone() {
        let g = parse_ground("p :- not q. q :- not p. r :- p. s :- not r.");
        let small = g.empty_set();
        let big = named_set(&g, &["q"]);
        let a_small = a_p(&g, &small);
        let a_big = a_p(&g, &big);
        assert!(a_small.is_subset(&a_big), "A_P must preserve ⊆");
    }

    #[test]
    fn t_p_single_step() {
        let g = parse_ground("a. b :- a. c :- b, not d.");
        let m = PartialModel::empty(g.atom_count());
        let step = t_p(&g, &m);
        assert_eq!(g.set_to_names(&step), vec!["a"]);
    }

    #[test]
    fn stable_model_is_s_tilde_fixpoint() {
        // p :- not q. q :- not p. has two stable models {p} and {q};
        // as negative sets: {q} (¬q) and {p}.
        let g = parse_ground("p :- not q. q :- not p.");
        let not_q = named_set(&g, &["q"]);
        assert_eq!(s_tilde(&g, &not_q), not_q);
        let not_p = named_set(&g, &["p"]);
        assert_eq!(s_tilde(&g, &not_p), not_p);
        // ∅ is not a fixpoint.
        assert_ne!(s_tilde(&g, &g.empty_set()), g.empty_set());
    }

    #[test]
    fn q_operators_agree_with_each_other() {
        let g =
            parse_ground("p :- not q. q :- not p. r :- p. r :- q. s. t :- s, not u. u :- not s.");
        let via_qp = lfp_positive(&g, q_p_op);
        let via_q = lfp_positive(&g, q_op);
        assert_eq!(via_qp, via_q, "Theorem 8.10: J_ω = I_ω");
    }

    #[test]
    fn horn_programs_s_p_ignores_negatives() {
        let g = parse_ground("a. b :- a. c :- b.");
        assert_eq!(s_p(&g, &g.empty_set()), s_p(&g, &g.full_set()));
    }
}
