//! Partial interpretations and partial models (Section 3.3).
//!
//! A partial interpretation is a partial function from the Herbrand base to
//! `{true, false}`, represented as a pair of disjoint atom sets. Rule
//! satisfaction follows Definition 3.5, which is deliberately *not* the
//! three-valued truth of `head ∨ ¬body` — see Example 3.1, reproduced in the
//! tests below.

use afp_datalog::bitset::AtomSet;
use afp_datalog::program::{GroundProgram, GroundRule};

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Atom is true in the interpretation.
    True,
    /// Atom is false in the interpretation.
    False,
    /// Atom is neither.
    Undefined,
}

/// A partial interpretation: disjoint sets of true and false atoms over a
/// common Herbrand base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialModel {
    /// Atoms assigned true (`I⁺`).
    pub pos: AtomSet,
    /// Atoms assigned false (the atoms of `Ĩ`).
    pub neg: AtomSet,
}

impl PartialModel {
    /// Construct from disjoint positive/negative sets.
    ///
    /// # Panics
    /// Panics if the sets intersect or range over different universes.
    pub fn new(pos: AtomSet, neg: AtomSet) -> Self {
        assert_eq!(pos.universe(), neg.universe(), "universe mismatch");
        assert!(pos.is_disjoint(&neg), "inconsistent partial interpretation");
        PartialModel { pos, neg }
    }

    /// The everywhere-undefined interpretation.
    pub fn empty(universe: usize) -> Self {
        PartialModel {
            pos: AtomSet::empty(universe),
            neg: AtomSet::empty(universe),
        }
    }

    /// Truth value of an atom.
    pub fn truth(&self, atom: u32) -> Truth {
        if self.pos.contains(atom) {
            Truth::True
        } else if self.neg.contains(atom) {
            Truth::False
        } else {
            Truth::Undefined
        }
    }

    /// The undefined portion of the Herbrand base.
    pub fn undefined(&self) -> AtomSet {
        let mut u = self.pos.union(&self.neg);
        u = u.complement();
        u
    }

    /// True iff every atom is assigned.
    pub fn is_total(&self) -> bool {
        self.undefined().is_empty()
    }

    /// Number of assigned atoms.
    pub fn defined_count(&self) -> usize {
        self.pos.count() + self.neg.count()
    }

    /// Information ordering: does `self` assign a subset of the literals of
    /// `other`? (`I ⊑ J` iff `I⁺ ⊆ J⁺` and `Ĩ ⊆ J̃`.)
    pub fn leq(&self, other: &PartialModel) -> bool {
        self.pos.is_subset(&other.pos) && self.neg.is_subset(&other.neg)
    }

    /// Truth of a rule body (conjunction, Definition 3.4): true when every
    /// positive subgoal is true and every negated subgoal's atom is false;
    /// false when some positive subgoal is false or some negated subgoal's
    /// atom is true; undefined otherwise.
    pub fn body_truth(&self, rule: &GroundRule) -> Truth {
        let mut all_true = true;
        for &p in rule.pos.iter() {
            match self.truth(p.0) {
                Truth::False => return Truth::False,
                Truth::Undefined => all_true = false,
                Truth::True => {}
            }
        }
        for &n in rule.neg.iter() {
            match self.truth(n.0) {
                Truth::True => return Truth::False,
                Truth::Undefined => all_true = false,
                Truth::False => {}
            }
        }
        if all_true {
            Truth::True
        } else {
            Truth::Undefined
        }
    }

    /// Satisfaction of an instantiated rule per Definition 3.5: the head is
    /// true, **or** the body is false, **or** both head and body are
    /// undefined.
    pub fn satisfies_rule(&self, rule: &GroundRule) -> bool {
        match self.truth(rule.head.0) {
            Truth::True => true,
            Truth::False => self.body_truth(rule) == Truth::False,
            Truth::Undefined => self.body_truth(rule) != Truth::True,
        }
    }

    /// Is this a partial model of the program (every rule satisfied)?
    pub fn is_partial_model(&self, prog: &GroundProgram) -> bool {
        prog.rules().all(|r| self.satisfies_rule(r))
    }

    /// Render as sorted literal strings (`p`, `not q`, …).
    pub fn to_literal_names(&self, prog: &GroundProgram) -> Vec<String> {
        let mut v: Vec<String> = self
            .pos
            .iter()
            .map(|a| prog.atom_name(afp_datalog::AtomId(a)))
            .chain(
                self.neg
                    .iter()
                    .map(|a| format!("not {}", prog.atom_name(afp_datalog::AtomId(a)))),
            )
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::program::parse_ground;

    #[test]
    fn truth_lookup() {
        let mut pos = AtomSet::empty(4);
        let mut neg = AtomSet::empty(4);
        pos.insert(0);
        neg.insert(1);
        let m = PartialModel::new(pos, neg);
        assert_eq!(m.truth(0), Truth::True);
        assert_eq!(m.truth(1), Truth::False);
        assert_eq!(m.truth(2), Truth::Undefined);
        assert_eq!(m.defined_count(), 2);
        assert!(!m.is_total());
        assert_eq!(m.undefined().count(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn overlapping_sets_rejected() {
        let mut pos = AtomSet::empty(2);
        let mut neg = AtomSet::empty(2);
        pos.insert(0);
        neg.insert(0);
        let _ = PartialModel::new(pos, neg);
    }

    #[test]
    fn rule_satisfaction_cases() {
        let g = parse_ground("p :- q, not r.");
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let q = g.find_atom_by_name("q", &[]).unwrap();
        let r = g.find_atom_by_name("r", &[]).unwrap();
        let rule = g.rule(0);
        let u = g.atom_count();

        // Head true ⇒ satisfied regardless of body.
        let m = PartialModel::new(
            AtomSet::from_iter(u, [p.0, q.0]),
            AtomSet::from_iter(u, [r.0]),
        );
        assert!(m.satisfies_rule(rule));

        // Body false (q false) ⇒ satisfied.
        let m = PartialModel::new(AtomSet::empty(u), AtomSet::from_iter(u, [q.0]));
        assert!(m.satisfies_rule(rule));

        // Body true, head false ⇒ violated.
        let m = PartialModel::new(
            AtomSet::from_iter(u, [q.0]),
            AtomSet::from_iter(u, [p.0, r.0]),
        );
        assert!(!m.satisfies_rule(rule));

        // Head and body both undefined ⇒ satisfied (condition 3).
        let m = PartialModel::empty(u);
        assert!(m.satisfies_rule(rule));

        // Head false, body undefined ⇒ NOT satisfied (the p ← q example
        // discussed below Definition 3.5).
        let m = PartialModel::new(AtomSet::empty(u), AtomSet::from_iter(u, [p.0]));
        assert!(!m.satisfies_rule(rule));

        // Head true, body undefined ⇒ satisfied.
        let m = PartialModel::new(AtomSet::from_iter(u, [p.0]), AtomSet::empty(u));
        assert!(m.satisfies_rule(rule));
    }

    #[test]
    fn example_3_1_no_extension_to_total_model() {
        // p :- q.  p :- r.  q :- not r.  r :- not q.
        // I₁ = {¬p} satisfies no rule bodies' falsity but p is true in all
        // total models; Definition 3.5 rightly rejects I₁ as a partial
        // model (the rules p ← q, p ← r are unsatisfied: head false, body
        // undefined).
        let g = parse_ground("p :- q. p :- r. q :- not r. r :- not q.");
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let u = g.atom_count();
        let m = PartialModel::new(AtomSet::empty(u), AtomSet::from_iter(u, [p.0]));
        assert!(!m.is_partial_model(&g));
        // The empty interpretation IS a partial model.
        assert!(PartialModel::empty(u).is_partial_model(&g));
    }

    #[test]
    fn information_ordering() {
        let a = PartialModel::new(AtomSet::from_iter(3, [0]), AtomSet::empty(3));
        let b = PartialModel::new(AtomSet::from_iter(3, [0]), AtomSet::from_iter(3, [1]));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&a));
    }

    #[test]
    fn literal_rendering_sorted() {
        let g = parse_ground("p :- not q.");
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let q = g.find_atom_by_name("q", &[]).unwrap();
        let m = PartialModel::new(AtomSet::from_iter(2, [p.0]), AtomSet::from_iter(2, [q.0]));
        assert_eq!(m.to_literal_names(&g), vec!["not q", "p"]);
    }
}
