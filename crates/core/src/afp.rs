//! The alternating fixpoint computation (Section 5).
//!
//! Starting from the empty set of negative conclusions, repeatedly apply
//! the stability transformation `S̃_P`:
//!
//! ```text
//! Ĩ₀ = ∅,   Ĩ_{k+1} = S̃_P(Ĩ_k)
//! ```
//!
//! Because `S̃_P` is antimonotone, the even-indexed iterates form an
//! increasing chain of *underestimates* of the well-founded negative
//! conclusions and the odd-indexed ones a decreasing chain of
//! *overestimates* (Figure 2):
//!
//! ```text
//! Ĩ₀ ⊆ Ĩ₂ ⊆ Ĩ₄ ⊆ … ⊆ W̃ ⊆ … ⊆ Ĩ₅ ⊆ Ĩ₃ ⊆ Ĩ₁
//! ```
//!
//! The even chain converges to `Ã = lfp(A_P)`, the least fixpoint of the
//! (monotone) alternating transformation `A_P = S̃_P ∘ S̃_P`. The
//! **alternating fixpoint partial model** is then `A⁺ ∔ Ã` with
//! `A⁺ = S_P(Ã)` (Definition 5.2) — and by Theorem 7.8 this is exactly the
//! well-founded partial model. For finite Herbrand bases the computation is
//! polynomial: at most `|H|/2 + 2` outer iterations, each two linear-time
//! `S_P` closures.

use afp_datalog::bitset::AtomSet;
use afp_datalog::horn::HornEngine;
use afp_datalog::program::GroundProgram;

use crate::interp::PartialModel;
use crate::ops;

/// How the `S_P` closures of the alternating sequence are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Recompute every closure from scratch (two cold `S_P` per outer
    /// iteration). Matches the paper's definition verbatim.
    #[default]
    Naive,
    /// Warm-start the closures of the increasing underestimate chain
    /// `Ĩ₀ ⊆ Ĩ₂ ⊆ …`: the engine's rule counters survive across outer
    /// iterations and only the freshly added negative literals are
    /// propagated. The decreasing overestimate chain is still recomputed
    /// (retraction is not incremental). An ablation, not in the paper;
    /// bench `afp_ablation` quantifies it.
    IncrementalUnder,
}

/// Options for [`alternating_fixpoint_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AfpOptions {
    /// Closure strategy.
    pub strategy: Strategy,
    /// Record the full `(Ĩ_k, S_P(Ĩ_k))` sequence (Table I format).
    pub record_trace: bool,
}

/// One row of the alternating sequence, as in Table I of the paper.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Iteration index `k`.
    pub k: usize,
    /// The set of negative literals `Ĩ_k` (atoms assumed false).
    pub i_tilde: AtomSet,
    /// `S_P(Ĩ_k)` — the positive consequences granted `Ĩ_k`.
    pub s_p: AtomSet,
}

/// The recorded alternating sequence.
#[derive(Debug, Clone, Default)]
pub struct AfpTrace {
    /// Rows in iteration order. When the computation converges because
    /// `Ĩ_{k+2} = Ĩ_k`, the repeated row is included, mirroring the
    /// paper's Table I which shows the convergence row explicitly.
    pub steps: Vec<TraceStep>,
}

/// Result of the alternating fixpoint computation.
#[derive(Debug, Clone)]
pub struct AfpResult {
    /// The alternating fixpoint partial model `A⁺ ∔ Ã` (= the
    /// well-founded partial model, Theorem 7.8).
    pub model: PartialModel,
    /// `Ã = lfp(A_P)`, the negative conclusions.
    pub negative_fixpoint: AtomSet,
    /// Number of `S̃_P` applications performed.
    pub iterations: usize,
    /// True iff the model is total (no undefined atoms). A total AFP model
    /// is the unique stable model of the program (Section 5).
    pub is_total: bool,
    /// True iff `Ã` is a fixpoint of `S̃_P` itself (not merely of
    /// `A_P`); equivalent to the model being total.
    pub is_stable_fixpoint: bool,
    /// The alternating sequence, when requested.
    pub trace: Option<AfpTrace>,
}

impl AfpResult {
    /// Convenience: the positive conclusions `A⁺`.
    pub fn positive(&self) -> &AtomSet {
        &self.model.pos
    }

    /// Convenience: the atoms left undefined.
    pub fn undefined(&self) -> AtomSet {
        self.model.undefined()
    }
}

/// Compute the alternating fixpoint partial model with default options.
pub fn alternating_fixpoint(prog: &GroundProgram) -> AfpResult {
    alternating_fixpoint_with(prog, &AfpOptions::default())
}

/// Compute the alternating fixpoint partial model.
pub fn alternating_fixpoint_with(prog: &GroundProgram, options: &AfpOptions) -> AfpResult {
    alternating_fixpoint_from(prog, options, &prog.empty_set())
}

/// Compute the alternating fixpoint starting the underestimate chain from
/// `seed` instead of `∅` — the warm re-solve entry point.
///
/// # Soundness
/// `seed` must be a subset of the well-founded negative conclusions `W̃`
/// (equivalently, of `lfp(A_P)`). Any such seed works: the iteration uses
/// the inflationary form `Ĩ_{k+2} = Ĩ_k ∪ A_P(Ĩ_k)`, whose iterates from a
/// point below the least fixpoint of the monotone `A_P` stay below it,
/// grow strictly until stationary, and can only become stationary *at*
/// `lfp(A_P)`. With `seed = ∅` the union is a no-op and the computation is
/// the paper's verbatim.
///
/// Callers obtain a valid seed from a previous solve via relevance: after
/// a program delta, atoms that cannot reach any changed atom in the
/// dependency graph keep their truth values, so the old `W̃` restricted to
/// unaffected atoms is `⊆` the new `W̃` (see `afp::Session`).
///
/// # Panics
/// Panics if `seed`'s universe differs from the program's atom count.
pub fn alternating_fixpoint_from(
    prog: &GroundProgram,
    options: &AfpOptions,
    seed: &AtomSet,
) -> AfpResult {
    assert_eq!(
        seed.universe(),
        prog.atom_count(),
        "seed universe must match the program"
    );
    match options.strategy {
        Strategy::Naive => run(prog, options, NaiveCursor::new(prog), seed),
        Strategy::IncrementalUnder => run(prog, options, IncrementalCursor::new(prog), seed),
    }
}

/// Strategy abstraction: computes `S_P(Ĩ)` for the under-chain iterates.
trait UnderChainCursor {
    /// `S_P(under)` where `under` is the current even iterate; `under` is
    /// guaranteed to be a superset of the previous call's argument.
    fn s_p_under(&mut self, prog: &GroundProgram, under: &AtomSet) -> AtomSet;
}

struct NaiveCursor;

impl NaiveCursor {
    fn new(_prog: &GroundProgram) -> Self {
        NaiveCursor
    }
}

impl UnderChainCursor for NaiveCursor {
    fn s_p_under(&mut self, prog: &GroundProgram, under: &AtomSet) -> AtomSet {
        ops::s_p(prog, under)
    }
}

struct IncrementalCursor<'p> {
    engine: HornEngine<'p>,
}

impl<'p> IncrementalCursor<'p> {
    fn new(prog: &'p GroundProgram) -> Self {
        IncrementalCursor {
            engine: HornEngine::new(prog),
        }
    }
}

impl UnderChainCursor for IncrementalCursor<'_> {
    fn s_p_under(&mut self, _prog: &GroundProgram, under: &AtomSet) -> AtomSet {
        // `under` only grows along the even chain; feed the delta.
        let fresh = under.difference(self.engine.assumed_false());
        self.engine.assume_false_all(&fresh);
        self.engine.derived().clone()
    }
}

fn run(
    prog: &GroundProgram,
    options: &AfpOptions,
    mut cursor: impl UnderChainCursor,
    seed: &AtomSet,
) -> AfpResult {
    let mut trace = options.record_trace.then(AfpTrace::default);
    let mut under = seed.clone(); // Ĩ₀ (∅ for a cold solve)
    let mut k = 0usize;
    let mut iterations = 0usize;
    let mut stable_fixpoint = false;

    let (a_tilde, a_plus) = loop {
        // S_P(Ĩ_{2m}) — underestimate of the positive conclusions.
        let sp_under = cursor.s_p_under(prog, &under);
        if let Some(t) = trace.as_mut() {
            t.steps.push(TraceStep {
                k,
                i_tilde: under.clone(),
                s_p: sp_under.clone(),
            });
        }
        // Ĩ_{2m+1} = S̃_P(Ĩ_{2m}) — overestimate of the negatives.
        let over = sp_under.complement();
        iterations += 1;
        if over == under {
            // Ĩ is a fixpoint of S̃_P itself: total model, unique stable
            // model (Section 5 examples (a) and (c)).
            stable_fixpoint = true;
            break (under, sp_under);
        }
        // S_P(Ĩ_{2m+1}) — overestimate of the positives.
        let sp_over = ops::s_p(prog, &over);
        if let Some(t) = trace.as_mut() {
            t.steps.push(TraceStep {
                k: k + 1,
                i_tilde: over.clone(),
                s_p: sp_over.clone(),
            });
        }
        // Ĩ_{2m+2} = Ĩ_{2m} ∪ S̃_P(Ĩ_{2m+1}) — next underestimate. The
        // union makes the chain inflationary, which a warm seed needs for
        // convergence (see `alternating_fixpoint_from`); on the cold path
        // A_P's iterates already ascend and the union changes nothing.
        let mut next_under = sp_over.complement();
        next_under.union_with(&under);
        iterations += 1;
        if next_under == under {
            // Least fixpoint of A_P reached. Record the convergence row as
            // Table I does.
            if let Some(t) = trace.as_mut() {
                t.steps.push(TraceStep {
                    k: k + 2,
                    i_tilde: next_under.clone(),
                    s_p: sp_under.clone(),
                });
            }
            break (under, sp_under);
        }
        under = next_under;
        k += 2;
    };

    let model = PartialModel::new(a_plus, a_tilde.clone());
    let is_total = model.is_total();
    AfpResult {
        model,
        negative_fixpoint: a_tilde,
        iterations,
        is_total,
        is_stable_fixpoint: stable_fixpoint || is_total,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::program::parse_ground;

    /// The nine-atom program of Example 5.1 / Table I.
    fn example_5_1() -> GroundProgram {
        parse_ground(
            "p(a) :- p(c), not p(b).
             p(b) :- not p(a).
             p(c).
             p(d) :- p(e), not p(f).
             p(d) :- p(f), not p(g).
             p(d) :- p(h).
             p(e) :- p(d).
             p(f) :- p(e).
             p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        )
    }

    fn names(prog: &GroundProgram, s: &AtomSet) -> Vec<String> {
        prog.set_to_names(s)
    }

    #[test]
    fn example_5_1_model() {
        let g = example_5_1();
        let r = alternating_fixpoint(&g);
        assert_eq!(names(&g, &r.model.pos), vec!["p(c)", "p(i)"]);
        assert_eq!(
            names(&g, &r.model.neg),
            vec!["p(d)", "p(e)", "p(f)", "p(g)", "p(h)"]
        );
        assert_eq!(names(&g, &r.undefined()), vec!["p(a)", "p(b)"]);
        assert!(!r.is_total);
        assert!(!r.is_stable_fixpoint);
    }

    #[test]
    fn example_5_1_trace_matches_table_1() {
        let g = example_5_1();
        let r = alternating_fixpoint_with(
            &g,
            &AfpOptions {
                record_trace: true,
                ..Default::default()
            },
        );
        let t = r.trace.expect("trace requested");
        assert_eq!(t.steps.len(), 5, "Table I has rows k = 0..4");
        // Row 0: Ĩ₀ = ∅, S_P = {p(c)}.
        assert!(t.steps[0].i_tilde.is_empty());
        assert_eq!(names(&g, &t.steps[0].s_p), vec!["p(c)"]);
        // Row 1: Ĩ₁ = ¬p{a,b,d,e,f,g,h,i}, S_P = p{a,b,c,i}.
        assert_eq!(
            names(&g, &t.steps[1].i_tilde),
            vec!["p(a)", "p(b)", "p(d)", "p(e)", "p(f)", "p(g)", "p(h)", "p(i)"]
        );
        assert_eq!(
            names(&g, &t.steps[1].s_p),
            vec!["p(a)", "p(b)", "p(c)", "p(i)"]
        );
        // Row 2: Ĩ₂ = ¬p{d,e,f,g,h}, S_P = p{c,i}.
        assert_eq!(
            names(&g, &t.steps[2].i_tilde),
            vec!["p(d)", "p(e)", "p(f)", "p(g)", "p(h)"]
        );
        assert_eq!(names(&g, &t.steps[2].s_p), vec!["p(c)", "p(i)"]);
        // Row 3: Ĩ₃ = ¬p{a,b,d,e,f,g,h}, S_P = p{a,b,c,i}.
        assert_eq!(
            names(&g, &t.steps[3].i_tilde),
            vec!["p(a)", "p(b)", "p(d)", "p(e)", "p(f)", "p(g)", "p(h)"]
        );
        assert_eq!(
            names(&g, &t.steps[3].s_p),
            vec!["p(a)", "p(b)", "p(c)", "p(i)"]
        );
        // Row 4: Ĩ₄ = Ĩ₂ — convergence.
        assert_eq!(t.steps[4].i_tilde, t.steps[2].i_tilde);
        assert_eq!(t.steps[4].s_p, t.steps[2].s_p);
    }

    #[test]
    fn horn_program_total_in_one_round() {
        let g = parse_ground("a. b :- a. c :- d.");
        let r = alternating_fixpoint(&g);
        assert!(r.is_total);
        assert!(r.is_stable_fixpoint);
        assert_eq!(names(&g, &r.model.pos), vec!["a", "b"]);
        assert_eq!(names(&g, &r.model.neg), vec!["c", "d"]);
    }

    #[test]
    fn two_cycle_all_undefined() {
        let g = parse_ground("p :- not q. q :- not p.");
        let r = alternating_fixpoint(&g);
        assert!(r.model.pos.is_empty());
        assert!(r.model.neg.is_empty());
        assert_eq!(r.undefined().count(), 2);
        assert!(!r.is_total);
    }

    #[test]
    fn odd_cycle_all_undefined() {
        let g = parse_ground("p :- not q. q :- not r. r :- not p.");
        let r = alternating_fixpoint(&g);
        assert_eq!(r.undefined().count(), 3);
    }

    #[test]
    fn strategies_agree() {
        let programs = [
            "p :- not q. q :- not p. r :- p. r :- q.",
            "a. b :- a, not c. c :- not b. d :- c, not a.",
            "w :- not l. l :- not w. x :- w, not y. y :- not x.",
            "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
             p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
             p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        ];
        for src in programs {
            let g = parse_ground(src);
            let naive = alternating_fixpoint_with(
                &g,
                &AfpOptions {
                    strategy: Strategy::Naive,
                    record_trace: false,
                },
            );
            let incr = alternating_fixpoint_with(
                &g,
                &AfpOptions {
                    strategy: Strategy::IncrementalUnder,
                    record_trace: false,
                },
            );
            assert_eq!(naive.model, incr.model, "strategy mismatch on {src}");
        }
    }

    #[test]
    fn sandwich_invariant_on_trace() {
        // Even iterates ⊆ Ã ⊆ odd iterates (Figure 2).
        let g = example_5_1();
        let r = alternating_fixpoint_with(
            &g,
            &AfpOptions {
                record_trace: true,
                ..Default::default()
            },
        );
        let t = r.trace.unwrap();
        for step in &t.steps {
            if step.k % 2 == 0 {
                assert!(
                    step.i_tilde.is_subset(&r.negative_fixpoint),
                    "even iterate must underestimate"
                );
            } else {
                assert!(
                    r.negative_fixpoint.is_subset(&step.i_tilde),
                    "odd iterate must overestimate"
                );
            }
        }
    }

    #[test]
    fn empty_program() {
        let b = afp_datalog::GroundProgramBuilder::new();
        let g = b.finish();
        let r = alternating_fixpoint(&g);
        assert!(r.is_total);
        assert_eq!(r.model.pos.count(), 0);
    }

    #[test]
    fn afp_model_is_a_partial_model() {
        for src in [
            "p :- not q. q :- not p.",
            "a. b :- a, not c. c :- not b.",
            "v :- not v.",
            "x :- not y. y :- x.",
        ] {
            let g = parse_ground(src);
            let r = alternating_fixpoint(&g);
            assert!(
                r.model.is_partial_model(&g),
                "AFP model must satisfy every rule of {src}"
            );
        }
    }

    #[test]
    fn warm_seed_below_the_fixpoint_reaches_the_same_model() {
        // Seed the chain with every subset of the cold Ã; all must land on
        // the same model, under both strategies.
        for src in [
            "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
             p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
             p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
            "a. b :- a, not c. c :- not b. d :- c, not a.",
            "p :- not q. q :- not p. r :- p. r :- q.",
        ] {
            let g = parse_ground(src);
            let cold = alternating_fixpoint(&g);
            let negatives: Vec<u32> = cold.negative_fixpoint.iter().collect();
            for mask in 0..(1u32 << negatives.len().min(6)) {
                let seed = AtomSet::from_iter(
                    g.atom_count(),
                    negatives
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &a)| a),
                );
                for strategy in [Strategy::Naive, Strategy::IncrementalUnder] {
                    let warm = alternating_fixpoint_from(
                        &g,
                        &AfpOptions {
                            strategy,
                            record_trace: false,
                        },
                        &seed,
                    );
                    assert_eq!(warm.model, cold.model, "seed {seed:?} on {src}");
                }
            }
        }
    }

    #[test]
    fn warm_seed_of_the_full_fixpoint_converges_immediately() {
        let g = example_5_1();
        let cold = alternating_fixpoint(&g);
        let warm = alternating_fixpoint_from(&g, &AfpOptions::default(), &cold.negative_fixpoint);
        assert_eq!(warm.model, cold.model);
        assert!(warm.iterations <= 2, "seeded at lfp: one round to confirm");
    }

    #[test]
    fn self_negation_leaves_atom_undefined() {
        // v :- not v.  — v is undefined in the WFS.
        let g = parse_ground("v :- not v.");
        let r = alternating_fixpoint(&g);
        assert_eq!(r.undefined().count(), 1);
    }
}
