//! # afp-core — the alternating fixpoint
//!
//! The primary contribution of *Van Gelder, "The Alternating Fixpoint of
//! Logic Programs with Negation"* (PODS 1989 / JCSS 1993), implemented over
//! the `afp-datalog` substrate:
//!
//! * [`interp`] — partial interpretations and Definition 3.5 satisfaction;
//! * [`ops`] — the operator zoo: `C_P`, `T_P`, `S_P`, `S̃_P`, `A_P`, and
//!   the Section 8.4 operators `Q`/`Q_P`;
//! * [`afp`] — the alternating fixpoint computation itself, with trace
//!   recording (Table I) and an incremental evaluation strategy.
//!
//! ## Quick example
//!
//! ```
//! use afp_datalog::program::parse_ground;
//! use afp_core::afp::alternating_fixpoint;
//!
//! // The win–move game on a 3-node path: a → b → c.
//! let g = parse_ground(
//!     "wins(a) :- move(a, b), not wins(b).
//!      wins(b) :- move(b, c), not wins(c).
//!      move(a, b). move(b, c).",
//! );
//! let r = alternating_fixpoint(&g);
//! let wins_b = g.find_atom_by_name("wins", &["b"]).unwrap();
//! assert!(r.model.pos.contains(wins_b.0)); // b moves to the sink c and wins
//! let wins_a = g.find_atom_by_name("wins", &["a"]).unwrap();
//! assert!(r.model.neg.contains(wins_a.0)); // a can only move to the winner b
//! assert!(r.is_total);
//! ```

#![warn(missing_docs)]

pub mod afp;
pub mod interp;
pub mod ops;
pub mod relevance;

pub use afp::{
    alternating_fixpoint, alternating_fixpoint_from, alternating_fixpoint_with, AfpOptions,
    AfpResult, AfpTrace, Strategy, TraceStep,
};
pub use interp::{PartialModel, Truth};
