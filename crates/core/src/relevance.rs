//! Query-directed relevance restriction.
//!
//! The paper's conclusion (Section 9) calls for "classes of unstratified
//! programs and **queries on them** for which the alternating fixpoint
//! semantics is computationally tractable". The simplest such lever, used
//! by every practical engine, is *relevance*: the well-founded truth value
//! of an atom depends only on the rules of atoms reachable from it in the
//! dependency graph (through positive **and** negative arcs). Restricting
//! the program to that cone before running the alternating fixpoint
//! preserves the query's truth value while shrinking the instance.
//!
//! Soundness is the splitting property of the well-founded semantics: the
//! cone `C` of the query is closed under rule bodies, so for atoms in `C`
//! the operators `S_P`, `S̃_P`, `A_P` of the restricted program coincide
//! with the originals on `C` — atoms outside `C` cannot influence any rule
//! whose head is in `C`. Property-tested in `tests/relevance.rs`.

use afp_datalog::atoms::AtomId;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;

/// The relevance cone: atoms (transitively) reachable from the seeds
/// through rule bodies.
pub fn relevant_atoms(prog: &GroundProgram, seeds: &[AtomId]) -> AtomSet {
    let mut cone = prog.empty_set();
    let mut queue: Vec<AtomId> = Vec::new();
    for &s in seeds {
        if cone.insert(s.0) {
            queue.push(s);
        }
    }
    while let Some(atom) = queue.pop() {
        for &rid in prog.rules_with_head(atom) {
            let r = prog.rule(rid);
            for &q in r.pos.iter().chain(r.neg.iter()) {
                if cone.insert(q.0) {
                    queue.push(q);
                }
            }
        }
    }
    cone
}

/// Restrict `prog` to the rules relevant to the seed atoms. The returned
/// program shares the Herbrand base (atom ids remain valid); atoms outside
/// the cone have no rules and are false in it.
pub fn restrict_to_query(prog: &GroundProgram, seeds: &[AtomId]) -> GroundProgram {
    let cone = relevant_atoms(prog, seeds);
    prog.restrict_heads(&cone)
}

/// Convenience: the well-founded truth value of a single atom, computed on
/// the relevance-restricted program.
pub fn query(prog: &GroundProgram, atom: AtomId) -> crate::interp::Truth {
    let restricted = restrict_to_query(prog, &[atom]);
    let result = crate::afp::alternating_fixpoint(&restricted);
    result.model.truth(atom.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    #[test]
    fn cone_follows_both_polarities() {
        let g = parse_ground("a :- b, not c. b :- d. c :- not e. x :- y.");
        let a = g.find_atom_by_name("a", &[]).unwrap();
        let cone = relevant_atoms(&g, &[a]);
        let names = g.set_to_names(&cone);
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
        assert!(!names.contains(&"x".to_string()));
    }

    #[test]
    fn restriction_preserves_query_truth() {
        let g = parse_ground(
            "goal :- p, not q. p. q :- not r. r :- not q.
             unrelated1 :- not unrelated2. unrelated2 :- not unrelated1.
             big :- unrelated1, unrelated2.",
        );
        let goal = g.find_atom_by_name("goal", &[]).unwrap();
        let full = alternating_fixpoint(&g);
        assert_eq!(query(&g, goal), full.model.truth(goal.0));
        // The restriction dropped the unrelated rules.
        let restricted = restrict_to_query(&g, &[goal]);
        assert!(restricted.rule_count() < g.rule_count());
    }

    #[test]
    fn query_on_sink_atom() {
        let g = parse_ground("a :- b.");
        let b = g.find_atom_by_name("b", &[]).unwrap();
        assert_eq!(query(&g, b), crate::interp::Truth::False);
    }

    #[test]
    fn seeds_union_their_cones() {
        let g = parse_ground("a :- b. c :- d. e.");
        let a = g.find_atom_by_name("a", &[]).unwrap();
        let c = g.find_atom_by_name("c", &[]).unwrap();
        let cone = relevant_atoms(&g, &[a, c]);
        assert_eq!(g.set_to_names(&cone), vec!["a", "b", "c", "d"]);
    }
}
