//! Behavioural tests of the alternating fixpoint computation itself:
//! iteration counts, trace invariants, scaling sanity, and the
//! `is_stable_fixpoint` flag.

use afp_core::afp::{alternating_fixpoint, alternating_fixpoint_with, AfpOptions, Strategy};
use afp_datalog::program::{parse_ground, GroundProgram, GroundProgramBuilder};

/// The negation ladder: p0. p1 ← ¬p0. … pk ← ¬p(k-1).
fn ladder(k: usize) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let mut prev = b.prop("p0");
    b.fact(prev);
    for i in 1..=k {
        let p = b.prop(&format!("p{i}"));
        b.rule(p, vec![], vec![prev]);
        prev = p;
    }
    b.finish()
}

/// A win–move path of n nodes (worst-case alternation depth).
fn path_game(n: usize) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let atoms: Vec<_> = (0..n).map(|i| b.prop(&format!("w{i}"))).collect();
    for i in 0..n.saturating_sub(1) {
        b.rule(atoms[i], vec![], vec![atoms[i + 1]]);
    }
    b.finish()
}

#[test]
fn ladder_is_decided_quickly() {
    // Ladders are stratified: the whole ladder is decided, and because
    // S_P sees all enabled negative facts at once, convergence needs few
    // alternation steps even for deep ladders.
    for k in [1usize, 2, 5, 20, 100] {
        let g = ladder(k);
        let r = alternating_fixpoint(&g);
        assert!(r.is_total, "ladder {k}");
        assert!(r.is_stable_fixpoint);
        // Alternating truths up the ladder.
        for i in 0..=k {
            let atom = g.find_atom_by_name(&format!("p{i}"), &[]).unwrap();
            if i % 2 == 0 {
                assert!(r.model.pos.contains(atom.0));
            } else {
                assert!(r.model.neg.contains(atom.0));
            }
        }
    }
}

#[test]
fn path_game_alternation_depth_is_linear() {
    for n in [2usize, 4, 8, 16, 32] {
        let g = path_game(n);
        let r = alternating_fixpoint(&g);
        assert!(r.is_total);
        // The loop needs Θ(n) S̃_P applications: each alternation round
        // settles one more layer from the sink.
        assert!(
            r.iterations >= n && r.iterations <= n + 2,
            "n={n}: iterations={}",
            r.iterations
        );
    }
}

#[test]
fn stable_fixpoint_flag_tracks_totality() {
    for (src, expect_total) in [
        ("a. b :- not a.", true),
        ("p :- not q. q :- not p.", false),
        ("w :- not l. l :- not w. t :- w. t :- l.", false),
        ("x :- y. y :- x.", true),
    ] {
        let g = parse_ground(src);
        let r = alternating_fixpoint(&g);
        assert_eq!(r.is_total, expect_total, "{src}");
        assert_eq!(
            r.is_stable_fixpoint, expect_total,
            "total ⟺ Ã is an S̃_P fixpoint: {src}"
        );
    }
}

#[test]
fn trace_rows_always_alternate_and_converge() {
    let g = parse_ground(
        "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
         p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
         p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
         p(i) :- p(c), not p(d).",
    );
    let r = alternating_fixpoint_with(
        &g,
        &AfpOptions {
            record_trace: true,
            strategy: Strategy::IncrementalUnder,
        },
    );
    let t = r.trace.expect("trace");
    // k values are consecutive from 0.
    for (i, step) in t.steps.iter().enumerate() {
        assert_eq!(step.k, i);
    }
    // The last row repeats an earlier even row (the convergence row).
    let last = t.steps.last().unwrap();
    assert_eq!(last.k % 2, 0);
    let repeat = t
        .steps
        .iter()
        .find(|s| s.k + 2 == last.k)
        .expect("previous even row");
    assert_eq!(repeat.i_tilde, last.i_tilde);
    // The model equals the final row's data.
    assert_eq!(r.negative_fixpoint, last.i_tilde);
    assert_eq!(r.model.pos, last.s_p);
}

#[test]
fn incremental_strategy_on_deep_paths() {
    // Both strategies must agree on the alternation-heavy worst case.
    for n in [63usize, 64, 65] {
        let g = path_game(n);
        let a = alternating_fixpoint_with(
            &g,
            &AfpOptions {
                strategy: Strategy::Naive,
                record_trace: false,
            },
        );
        let b = alternating_fixpoint_with(
            &g,
            &AfpOptions {
                strategy: Strategy::IncrementalUnder,
                record_trace: false,
            },
        );
        assert_eq!(a.model, b.model, "n={n}");
        assert_eq!(a.iterations, b.iterations);
    }
}

#[test]
fn relevance_query_matches_full_computation_on_paths() {
    let g = path_game(40);
    let full = alternating_fixpoint(&g);
    for i in [0usize, 1, 20, 39] {
        let atom = g.find_atom_by_name(&format!("w{i}"), &[]).unwrap();
        assert_eq!(
            afp_core::relevance::query(&g, atom),
            full.model.truth(atom.0),
            "w{i}"
        );
    }
}
