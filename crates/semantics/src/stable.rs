//! Stable models (Gelfond–Lifschitz; Sections 2.4 and 4).
//!
//! The original three-stage definition transforms a program by a candidate
//! total interpretation `M`: delete rules with a negative literal whose
//! atom is in `M`, drop the remaining negative literals, and take the least
//! model of the residual Horn program (the *GL-reduct*). `M` is stable when
//! it reproduces itself.
//!
//! The paper's reformulation (Definition 4.2) represents a total model by
//! its set of negative literals `M̃` and observes that `M` is stable iff
//! `M̃` is a fixpoint of the (antimonotone) stability transformation
//! `S̃_P`; equivalently `S_P(M̃) = M`. Both formulations are implemented
//! and cross-checked.
//!
//! Enumeration is a branch-and-propagate search:
//!
//! * *propagation* computes the well-founded model of the program
//!   **conditioned** on the current assumptions (assumed-true atoms become
//!   facts; rules for assumed-false atoms are suppressed). Every stable
//!   model of `P` consistent with the assumptions is a stable model of the
//!   conditioned program, and every stable model contains its well-founded
//!   model — so the conditioned WFS literals are forced;
//! * a *conflict check* rejects branches in which some original rule has a
//!   true body and false head;
//! * leaves are verified with the GL-reduct against the **original**
//!   program, so the search is sound regardless of propagation strength.
//!
//! Worst-case exponential, as it must be: deciding stable-model existence
//! is NP-complete (Elkan; Marek & Truszczyński — discussed in Section 2.4).
//! The `stable_hard` bench exhibits the blow-up; in contrast the
//! well-founded model is polynomial (Section 5).

use afp_core::interp::PartialModel;
use afp_core::ops;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;

/// The least model of the GL-reduct `P^M` — stage three of the original
/// definition. Built literally (delete / drop / close) for documentation
/// value; [`is_stable`] uses the equivalent `S_P` shortcut.
pub fn reduct_least_model(prog: &GroundProgram, m: &AtomSet) -> AtomSet {
    // Counter propagation over the surviving rules only.
    let mut pos_remaining: Vec<u32> = Vec::with_capacity(prog.rule_count());
    let mut deleted: Vec<bool> = Vec::with_capacity(prog.rule_count());
    let mut derived = prog.empty_set();
    let mut queue: Vec<u32> = Vec::new();
    for r in prog.rules() {
        let del = r.neg.iter().any(|&q| m.contains(q.0));
        deleted.push(del);
        pos_remaining.push(r.pos.len() as u32);
        if !del && r.pos.is_empty() && derived.insert(r.head.0) {
            queue.push(r.head.0);
        }
    }
    while let Some(atom) = queue.pop() {
        for &rid in prog.rules_with_pos(afp_datalog::AtomId(atom)) {
            if deleted[rid as usize] {
                continue;
            }
            let c = &mut pos_remaining[rid as usize];
            *c -= 1;
            if *c == 0 {
                let head = prog.rule(rid).head;
                if derived.insert(head.0) {
                    queue.push(head.0);
                }
            }
        }
    }
    derived
}

/// Is the total interpretation with true atoms `m` a stable model?
///
/// Uses the paper's formulation: `M` is stable iff `S_P(M̃) = M` where
/// `M̃ = conj(M)`; equivalent to `lfp(P^M) = M`.
pub fn is_stable(prog: &GroundProgram, m: &AtomSet) -> bool {
    ops::s_p(prog, &m.complement()) == *m
}

/// All stable models by exhaustive subset enumeration — usable only for
/// tiny Herbrand bases; the oracle for differential tests.
pub fn brute_force_stable(prog: &GroundProgram) -> Vec<AtomSet> {
    let n = prog.atom_count();
    assert!(n <= 24, "brute force is for tiny programs only");
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << n) {
        let m = AtomSet::from_iter(n, (0..n as u32).filter(|&i| mask & (1 << i) != 0));
        if is_stable(prog, &m) {
            out.push(m);
        }
    }
    out
}

/// Options for [`enumerate_stable`].
#[derive(Debug, Clone, Copy)]
pub struct EnumerateOptions {
    /// Stop after this many models.
    pub max_models: usize,
    /// Abort (returning what was found) after this many search nodes;
    /// `usize::MAX` to disable.
    pub max_nodes: usize,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            max_models: usize::MAX,
            max_nodes: usize::MAX,
        }
    }
}

/// Outcome of stable-model enumeration.
#[derive(Debug, Clone)]
pub struct EnumerateResult {
    /// The stable models found (sets of true atoms).
    pub models: Vec<AtomSet>,
    /// Search nodes expanded.
    pub nodes: usize,
    /// True when the search space was exhausted (the list is complete).
    pub complete: bool,
}

/// Enumerate stable models by branch-and-propagate.
pub fn enumerate_stable(prog: &GroundProgram, options: &EnumerateOptions) -> EnumerateResult {
    let mut state = Search {
        prog,
        options: *options,
        models: Vec::new(),
        nodes: 0,
        truncated: false,
        scores: branch_scores(prog),
    };
    let t = prog.empty_set();
    let f = prog.empty_set();
    state.search(&t, &f);
    EnumerateResult {
        complete: !state.truncated,
        models: state.models,
        nodes: state.nodes,
    }
}

/// Convenience wrapper: all stable models, unbounded.
pub fn stable_models(prog: &GroundProgram) -> Vec<AtomSet> {
    enumerate_stable(prog, &EnumerateOptions::default()).models
}

/// The cautious (skeptical) three-valued collapse of a set of stable
/// models over a universe of `atom_count` atoms: an atom is **true** when
/// it lies in every model, **false** when in none, **undefined**
/// otherwise. With no models at all, everything is undefined — the caller
/// should treat that case (program inconsistent under stable semantics)
/// separately.
pub fn cautious_consequences(models: &[AtomSet], atom_count: usize) -> PartialModel {
    if models.is_empty() {
        return PartialModel::empty(atom_count);
    }
    let mut pos = models[0].clone();
    let mut any = models[0].clone();
    for m in &models[1..] {
        pos.intersect_with(m);
        any.union_with(m);
    }
    PartialModel::new(pos, any.complement())
}

struct Search<'p> {
    prog: &'p GroundProgram,
    options: EnumerateOptions,
    models: Vec<AtomSet>,
    nodes: usize,
    truncated: bool,
    scores: Vec<u32>,
}

impl Search<'_> {
    fn search(&mut self, assumed_true: &AtomSet, assumed_false: &AtomSet) {
        if self.models.len() >= self.options.max_models {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.options.max_nodes {
            self.truncated = true;
            return;
        }
        // Propagate: well-founded model of the conditioned program.
        let wfs = conditioned_wfs(self.prog, assumed_true, assumed_false);
        // Conflict check against the original rules: a rule with body true
        // and head false under the forced assignment can never be repaired.
        for r in self.prog.rules() {
            let body_true = r.pos.iter().all(|&q| wfs.pos.contains(q.0))
                && r.neg.iter().all(|&q| wfs.neg.contains(q.0));
            if body_true && wfs.neg.contains(r.head.0) {
                return; // pruned
            }
        }
        if wfs.is_total() {
            // All candidate stable models in this branch coincide with the
            // conditioned WFS; verify against the original program.
            if is_stable(self.prog, &wfs.pos) {
                self.models.push(wfs.pos);
            }
            return;
        }
        // Branch on the highest-scoring undefined atom.
        let undefined = wfs.undefined();
        let pick = undefined
            .iter()
            .max_by_key(|&a| self.scores[a as usize])
            .expect("non-total model has an undefined atom");
        // False branch first: mirrors the paper's bias toward building up
        // negative conclusions.
        let mut f2 = wfs.neg.clone();
        f2.insert(pick);
        self.search(&wfs.pos, &f2);
        let mut t2 = wfs.pos;
        t2.insert(pick);
        self.search(&t2, &wfs.neg);
    }
}

/// Static branching scores: how often an atom occurs in negative bodies
/// (breaking those cycles first decides the most).
fn branch_scores(prog: &GroundProgram) -> Vec<u32> {
    let mut scores = vec![0u32; prog.atom_count()];
    for r in prog.rules() {
        for &q in r.neg.iter() {
            scores[q.index()] += 2;
        }
        for &q in r.pos.iter() {
            scores[q.index()] += 1;
        }
    }
    scores
}

/// The well-founded model of `P` conditioned on assumptions: atoms of
/// `assumed_true` act as facts, rules whose head is in `assumed_false` are
/// suppressed. Computed by the alternating fixpoint with a conditioned
/// `S_P` (no program rebuild).
pub fn conditioned_wfs(
    prog: &GroundProgram,
    assumed_true: &AtomSet,
    assumed_false: &AtomSet,
) -> PartialModel {
    let mut under = prog.empty_set();
    loop {
        let sp_under = conditioned_s_p(prog, &under, assumed_true, assumed_false);
        let over = sp_under.complement();
        if over == under {
            return PartialModel::new(sp_under, under);
        }
        let sp_over = conditioned_s_p(prog, &over, assumed_true, assumed_false);
        let next_under = sp_over.complement();
        if next_under == under {
            return PartialModel::new(sp_under, under);
        }
        under = next_under;
    }
}

/// `S_{P'}(Ĩ)` for the conditioned program `P' = P + facts(T) − rules
/// with head in F`, without materializing `P'`.
fn conditioned_s_p(
    prog: &GroundProgram,
    i_tilde: &AtomSet,
    assumed_true: &AtomSet,
    assumed_false: &AtomSet,
) -> AtomSet {
    let mut pos_remaining: Vec<u32> = Vec::with_capacity(prog.rule_count());
    let mut neg_remaining: Vec<u32> = Vec::with_capacity(prog.rule_count());
    let mut derived = prog.empty_set();
    let mut queue: Vec<u32> = Vec::new();
    for a in assumed_true.iter() {
        if derived.insert(a) {
            queue.push(a);
        }
    }
    for r in prog.rules() {
        let suppressed = assumed_false.contains(r.head.0);
        pos_remaining.push(r.pos.len() as u32);
        let unconfirmed = r.neg.iter().filter(|&&q| !i_tilde.contains(q.0)).count() as u32;
        neg_remaining.push(unconfirmed);
        if !suppressed && unconfirmed == 0 && r.pos.is_empty() && derived.insert(r.head.0) {
            queue.push(r.head.0);
        }
    }
    while let Some(atom) = queue.pop() {
        for &rid in prog.rules_with_pos(afp_datalog::AtomId(atom)) {
            let c = &mut pos_remaining[rid as usize];
            *c -= 1;
            if *c == 0 && neg_remaining[rid as usize] == 0 {
                let head = prog.rule(rid).head;
                if !assumed_false.contains(head.0) && derived.insert(head.0) {
                    queue.push(head.0);
                }
            }
        }
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    fn sets_sorted(prog: &GroundProgram, models: &[AtomSet]) -> Vec<Vec<String>> {
        let mut v: Vec<Vec<String>> = models.iter().map(|m| prog.set_to_names(m)).collect();
        v.sort();
        v
    }

    #[test]
    fn two_cycle_has_two_stable_models() {
        let g = parse_ground("p :- not q. q :- not p.");
        let models = stable_models(&g);
        assert_eq!(
            sets_sorted(&g, &models),
            vec![vec!["p".to_string()], vec!["q".to_string()]]
        );
    }

    #[test]
    fn odd_cycle_has_no_stable_model() {
        let g = parse_ground("p :- not q. q :- not r. r :- not p.");
        assert!(stable_models(&g).is_empty());
        assert!(brute_force_stable(&g).is_empty());
    }

    #[test]
    fn horn_program_unique_stable_model() {
        let g = parse_ground("a. b :- a. c :- d.");
        let models = stable_models(&g);
        assert_eq!(models.len(), 1);
        assert_eq!(g.set_to_names(&models[0]), vec!["a", "b"]);
    }

    #[test]
    fn reduct_agrees_with_s_p_shortcut() {
        let g = parse_ground("p :- not q. q :- not p. r :- p, not s. s :- q.");
        for mask in 0u64..16 {
            let m = AtomSet::from_iter(4, (0..4u32).filter(|&i| mask & (1 << i) != 0));
            assert_eq!(
                reduct_least_model(&g, &m),
                ops::s_p(&g, &m.complement()),
                "mask {mask}"
            );
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        for src in [
            "p :- not q. q :- not p.",
            "p :- not q. q :- not r. r :- not p.",
            "a. b :- a, not c. c :- not b.",
            "x :- not y. y :- not x. z :- x. z :- y. w :- not z.",
            "v :- not v.",
            "v :- not v. p :- not q. q :- not p.",
            "a :- not b. b :- not a. c :- a, not d. d :- b, not c.",
        ] {
            let g = parse_ground(src);
            let mut fast = stable_models(&g);
            let mut slow = brute_force_stable(&g);
            fast.sort_by_key(|m| m.iter().collect::<Vec<_>>());
            slow.sort_by_key(|m| m.iter().collect::<Vec<_>>());
            assert_eq!(fast, slow, "on {src}");
        }
    }

    #[test]
    fn every_stable_model_contains_wfs() {
        for src in [
            "p :- not q. q :- not p. r :- p. r :- q. base.",
            "a. b :- a, not c. c :- not b. d :- b.",
            "x :- not y. y :- not x. z :- x, not w. w :- not z.",
        ] {
            let g = parse_ground(src);
            let wfs = alternating_fixpoint(&g);
            for m in stable_models(&g) {
                assert!(wfs.model.pos.is_subset(&m), "WFS⁺ ⊆ M on {src}");
                assert!(wfs.model.neg.is_disjoint(&m), "WFS⁻ ∩ M = ∅ on {src}");
            }
        }
    }

    #[test]
    fn total_wfs_is_unique_stable_model() {
        let g = parse_ground("a. b :- a, not c. d :- not b.");
        let wfs = alternating_fixpoint(&g);
        assert!(wfs.is_total);
        let models = stable_models(&g);
        assert_eq!(models.len(), 1);
        assert_eq!(models[0], wfs.model.pos);
    }

    #[test]
    fn unique_stable_model_need_not_be_total_wfs() {
        // Section 2.4: "a well-founded total model is always the unique
        // stable model, but not vice versa". Classic witness:
        //   p :- not p. p :- not q. q :- not p.
        // WFS leaves everything undefined, yet {p} is the unique stable
        // model.
        let g = parse_ground("p :- not p. p :- not q. q :- not p.");
        let wfs = alternating_fixpoint(&g);
        assert!(!wfs.is_total);
        let models = stable_models(&g);
        assert_eq!(models.len(), 1);
        assert_eq!(g.set_to_names(&models[0]), vec!["p"]);
    }

    #[test]
    fn stable_models_are_fixpoints_of_s_tilde() {
        let g = parse_ground("p :- not q. q :- not p. r :- p.");
        for m in stable_models(&g) {
            let m_tilde = m.complement();
            assert_eq!(ops::s_tilde(&g, &m_tilde), m_tilde);
        }
    }

    #[test]
    fn model_limit_respected() {
        let g = parse_ground("p :- not q. q :- not p. r :- not s. s :- not r.");
        let r = enumerate_stable(
            &g,
            &EnumerateOptions {
                max_models: 2,
                max_nodes: usize::MAX,
            },
        );
        assert_eq!(r.models.len(), 2);
    }

    #[test]
    fn node_budget_truncates() {
        let g = parse_ground("p :- not q. q :- not p. r :- not s. s :- not r.");
        let r = enumerate_stable(
            &g,
            &EnumerateOptions {
                max_models: usize::MAX,
                max_nodes: 1,
            },
        );
        assert!(!r.complete);
    }

    #[test]
    fn conditioned_wfs_respects_assumptions() {
        let g = parse_ground("p :- not q. q :- not p. r :- p.");
        let q = g.find_atom_by_name("q", &[]).unwrap();
        let mut f = g.empty_set();
        f.insert(q.0);
        let m = conditioned_wfs(&g, &g.empty_set(), &f);
        // With q suppressed, p and r become true.
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let r = g.find_atom_by_name("r", &[]).unwrap();
        assert!(m.pos.contains(p.0));
        assert!(m.pos.contains(r.0));
        assert!(m.neg.contains(q.0));
    }
}
