//! Justifications: *why* is an atom true, false, or undefined in the
//! well-founded model?
//!
//! The paper's two halves of the semantics provide exactly the two
//! explanation shapes:
//!
//! * a **true** atom has a derivation in `S_P(W̃)` — a rule whose positive
//!   subgoals were derived strictly earlier and whose negated subgoals are
//!   well-founded-false;
//! * a **false** atom belongs to an unfounded set, so *every* rule for it
//!   has a *witness of unusability* (Definition 6.1): a body literal false
//!   in the model, or a positive subgoal that is itself in the unfounded
//!   set;
//! * an **undefined** atom is neither: it always has a rule whose
//!   usability hinges on undefined literals only.
//!
//! Explanations are one-step (each reason references subgoal atoms, which
//! can be explained in turn); [`Explainer::render`] follows them into an
//! indented tree with cycle cut-off.

use afp_core::interp::{PartialModel, Truth};
use afp_datalog::atoms::AtomId;
use afp_datalog::program::{GroundProgram, RuleId};

/// Why a rule cannot be used to derive its head (Definition 6.1's
/// "witness of unusability", extended with the undefined case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A positive subgoal is false in the model.
    FalsePositiveSubgoal(AtomId),
    /// A negated subgoal's atom is true in the model.
    TrueNegatedSubgoal(AtomId),
    /// A positive subgoal is itself unfounded (condition 2 of
    /// Definition 6.1) — the circular-support case.
    UnfoundedPositiveSubgoal(AtomId),
}

/// One-step justification for an atom's truth value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// True: derived by this rule; `subgoals` are its positive subgoals
    /// (each derived strictly earlier) and `assumed_false` its negated
    /// subgoals (each false in the model).
    DerivedBy {
        /// The firing rule.
        rule: RuleId,
        /// Positive subgoals, derived earlier.
        subgoals: Vec<AtomId>,
        /// Negated subgoals, all well-founded-false.
        assumed_false: Vec<AtomId>,
    },
    /// False: the atom has no rules at all.
    NoRules,
    /// False: every rule has a witness of unusability.
    AllRulesBlocked {
        /// One witness per rule (parallel to `rules`).
        witnesses: Vec<(RuleId, Witness)>,
    },
    /// Undefined: the listed rules are not blocked by defined literals;
    /// their usability depends on the listed undefined literals.
    SuspendedOn {
        /// Undefined atoms the truth value hinges on.
        atoms: Vec<AtomId>,
    },
}

/// Precomputed explanation context for one program + model.
pub struct Explainer<'p> {
    prog: &'p GroundProgram,
    model: &'p PartialModel,
    /// Derivation order of true atoms in `S_P(W̃)` (usize::MAX if not
    /// derived).
    rank: Vec<usize>,
    /// The rule that first derived each true atom.
    deriving_rule: Vec<Option<RuleId>>,
    /// Strongly connected component of each atom in the *positive*
    /// dependency graph — used to tell circular support (condition 2 of
    /// Definition 6.1) apart from plain falsity.
    pos_comp: Vec<u32>,
}

impl<'p> Explainer<'p> {
    /// Build the explainer by replaying `S_P(W̃)` and recording the
    /// derivation order.
    ///
    /// # Panics
    /// Debug-panics if `model` is not the well-founded model of `prog`
    /// (every true atom must be derivable with the model's own negatives).
    /// Use [`Explainer::try_new`] when the model may not be replayable.
    pub fn new(prog: &'p GroundProgram, model: &'p PartialModel) -> Self {
        Self::try_new(prog, model)
            .expect("model is not S_P-replayable: some true atom has no derivation")
    }

    /// Build the explainer, returning `None` when `model`'s true atoms are
    /// not all derivable by replaying `S_P` against its own negatives.
    /// That holds for the well-founded model and everything informationally
    /// below it (Fitting, perfect-model strata), but not in general for
    /// e.g. the inflationary fixpoint, whose conclusions may rest on
    /// assumptions the final model contradicts.
    pub fn try_new(prog: &'p GroundProgram, model: &'p PartialModel) -> Option<Self> {
        let n = prog.atom_count();
        let mut rank = vec![usize::MAX; n];
        let mut deriving_rule: Vec<Option<RuleId>> = vec![None; n];
        // Replay the Horn closure with Ĩ = model.neg, FIFO order.
        let mut pos_remaining: Vec<u32> = Vec::with_capacity(prog.rule_count());
        let mut enabled: Vec<bool> = Vec::with_capacity(prog.rule_count());
        let mut queue: std::collections::VecDeque<AtomId> = std::collections::VecDeque::new();
        let mut next_rank = 0usize;
        for (i, r) in prog.rules().enumerate() {
            pos_remaining.push(r.pos.len() as u32);
            let ok = r.neg.iter().all(|&q| model.neg.contains(q.0));
            enabled.push(ok);
            if ok && r.pos.is_empty() && rank[r.head.index()] == usize::MAX {
                rank[r.head.index()] = next_rank;
                next_rank += 1;
                deriving_rule[r.head.index()] = Some(i as RuleId);
                queue.push_back(r.head);
            }
        }
        while let Some(atom) = queue.pop_front() {
            for &rid in prog.rules_with_pos(atom) {
                if !enabled[rid as usize] {
                    continue;
                }
                let c = &mut pos_remaining[rid as usize];
                *c -= 1;
                if *c == 0 {
                    let head = prog.rule(rid).head;
                    if rank[head.index()] == usize::MAX {
                        rank[head.index()] = next_rank;
                        next_rank += 1;
                        deriving_rule[head.index()] = Some(rid);
                        queue.push_back(head);
                    }
                }
            }
        }
        // Every true atom must have been derived in the replay; otherwise
        // the model is not explainable in the paper's vocabulary.
        if model.pos.iter().any(|a| rank[a as usize] == usize::MAX) {
            return None;
        }
        // Positive dependency SCCs for circularity reporting.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in prog.rules() {
            for &q in r.pos.iter() {
                adj[r.head.index()].push(q.index());
            }
        }
        let sccs = afp_datalog::depgraph::tarjan_sccs(&adj);
        let mut pos_comp = vec![0u32; n];
        for (cid, comp) in sccs.iter().enumerate() {
            for &a in comp {
                pos_comp[a as usize] = cid as u32;
            }
        }
        Some(Explainer {
            prog,
            model,
            rank,
            deriving_rule,
            pos_comp,
        })
    }

    /// Position of `atom` in the derivation order of `S_P(W̃)`
    /// (`None` when the atom is not well-founded-true). Derivations listed
    /// by [`Explainer::explain`] always have strictly smaller ranks for
    /// their positive subgoals — the well-foundedness of the justification.
    pub fn derivation_rank(&self, atom: AtomId) -> Option<usize> {
        let r = self.rank[atom.index()];
        (r != usize::MAX).then_some(r)
    }

    /// One-step justification for `atom`.
    pub fn explain(&self, atom: AtomId) -> Reason {
        match self.model.truth(atom.0) {
            Truth::True => {
                let rid =
                    self.deriving_rule[atom.index()].expect("true atoms are derived in the replay");
                let r = self.prog.rule(rid);
                Reason::DerivedBy {
                    rule: rid,
                    subgoals: r.pos.to_vec(),
                    assumed_false: r.neg.to_vec(),
                }
            }
            Truth::False => {
                let rules = self.prog.rules_with_head(atom);
                if rules.is_empty() {
                    return Reason::NoRules;
                }
                let mut witnesses = Vec::with_capacity(rules.len());
                for &rid in rules {
                    let r = self.prog.rule(rid);
                    // Preference order: a false positive subgoal outside
                    // the head's positive SCC (plain falsity), then a true
                    // negated subgoal, then the circular-support case
                    // (false subgoal inside the same positive SCC —
                    // condition 2 of Definition 6.1).
                    let witness = r
                        .pos
                        .iter()
                        .find(|&&q| {
                            self.model.neg.contains(q.0)
                                && self.pos_comp[q.index()] != self.pos_comp[atom.index()]
                        })
                        .map(|&q| Witness::FalsePositiveSubgoal(q))
                        .or_else(|| {
                            r.neg
                                .iter()
                                .find(|&&q| self.model.pos.contains(q.0))
                                .map(|&q| Witness::TrueNegatedSubgoal(q))
                        })
                        .or_else(|| {
                            r.pos
                                .iter()
                                .find(|&&q| self.model.neg.contains(q.0))
                                .map(|&q| Witness::UnfoundedPositiveSubgoal(q))
                        })
                        .expect("a false atom's every rule has a witness (Def. 6.1)");
                    witnesses.push((rid, witness));
                }
                Reason::AllRulesBlocked { witnesses }
            }
            Truth::Undefined => {
                // Collect the undefined literals of rules not blocked by
                // defined literals.
                let mut atoms = Vec::new();
                for &rid in self.prog.rules_with_head(atom) {
                    let r = self.prog.rule(rid);
                    let blocked = r.pos.iter().any(|&q| self.model.neg.contains(q.0))
                        || r.neg.iter().any(|&q| self.model.pos.contains(q.0));
                    if blocked {
                        continue;
                    }
                    for &q in r.pos.iter().chain(r.neg.iter()) {
                        if self.model.truth(q.0) == Truth::Undefined && !atoms.contains(&q) {
                            atoms.push(q);
                        }
                    }
                }
                Reason::SuspendedOn { atoms }
            }
        }
    }

    /// Render a justification tree to `depth` levels, cutting cycles.
    pub fn render(&self, atom: AtomId, depth: usize) -> String {
        let mut out = String::new();
        let mut seen = Vec::new();
        self.render_rec(atom, depth, 0, &mut seen, &mut out);
        out
    }

    fn render_rec(
        &self,
        atom: AtomId,
        depth: usize,
        indent: usize,
        seen: &mut Vec<AtomId>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        let name = self.prog.atom_name(atom);
        let truth = self.model.truth(atom.0);
        if seen.contains(&atom) {
            out.push_str(&format!("{pad}{name} [{truth:?}] (see above)\n"));
            return;
        }
        seen.push(atom);
        match self.explain(atom) {
            Reason::DerivedBy {
                subgoals,
                assumed_false,
                ..
            } => {
                if subgoals.is_empty() && assumed_false.is_empty() {
                    out.push_str(&format!("{pad}{name} is TRUE: it is a fact\n"));
                    return;
                }
                out.push_str(&format!("{pad}{name} is TRUE because a rule fired:\n"));
                if depth > 0 {
                    for q in subgoals {
                        self.render_rec(q, depth - 1, indent + 1, seen, out);
                    }
                    for q in assumed_false {
                        out.push_str(&format!(
                            "{}not {} (false in the model)\n",
                            "  ".repeat(indent + 1),
                            self.prog.atom_name(q)
                        ));
                    }
                }
            }
            Reason::NoRules => {
                out.push_str(&format!("{pad}{name} is FALSE: no rules define it\n"));
            }
            Reason::AllRulesBlocked { witnesses } => {
                out.push_str(&format!(
                    "{pad}{name} is FALSE: every rule has a witness of unusability:\n"
                ));
                for (rid, w) in witnesses {
                    let wtext = match w {
                        Witness::FalsePositiveSubgoal(q) => {
                            format!("positive subgoal {} is false", self.prog.atom_name(q))
                        }
                        Witness::TrueNegatedSubgoal(q) => {
                            format!("negated subgoal {} is true", self.prog.atom_name(q))
                        }
                        Witness::UnfoundedPositiveSubgoal(q) => format!(
                            "positive subgoal {} is unfounded (circular support)",
                            self.prog.atom_name(q)
                        ),
                    };
                    out.push_str(&format!(
                        "{}rule {}: {}\n",
                        "  ".repeat(indent + 1),
                        rid,
                        wtext
                    ));
                }
            }
            Reason::SuspendedOn { atoms } => {
                let names: Vec<String> = atoms.iter().map(|&q| self.prog.atom_name(q)).collect();
                out.push_str(&format!(
                    "{pad}{name} is UNDEFINED: hinges on undefined {}\n",
                    names.join(", ")
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    fn explainer_for(src: &str) -> (GroundProgram, PartialModel) {
        let g = parse_ground(src);
        let r = alternating_fixpoint(&g);
        (g, r.model)
    }

    #[test]
    fn true_atoms_get_derivations_with_earlier_subgoals() {
        let (g, model) = explainer_for("a. b :- a. c :- b, not d.");
        let ex = Explainer::new(&g, &model);
        for atom in model.pos.iter() {
            match ex.explain(AtomId(atom)) {
                Reason::DerivedBy {
                    subgoals,
                    assumed_false,
                    ..
                } => {
                    for q in subgoals {
                        assert!(model.pos.contains(q.0));
                        assert!(
                            ex.derivation_rank(q).unwrap()
                                < ex.derivation_rank(AtomId(atom)).unwrap()
                        );
                    }
                    for q in assumed_false {
                        assert!(model.neg.contains(q.0));
                    }
                }
                other => panic!("true atom got {other:?}"),
            }
        }
    }

    #[test]
    fn false_atom_without_rules() {
        let (g, model) = explainer_for("a :- b.");
        let ex = Explainer::new(&g, &model);
        let b = g.find_atom_by_name("b", &[]).unwrap();
        assert_eq!(ex.explain(b), Reason::NoRules);
    }

    #[test]
    fn false_atom_with_blocked_rules() {
        let (g, model) = explainer_for("a :- b. a :- not c. c.");
        let ex = Explainer::new(&g, &model);
        let a = g.find_atom_by_name("a", &[]).unwrap();
        match ex.explain(a) {
            Reason::AllRulesBlocked { witnesses } => {
                assert_eq!(witnesses.len(), 2);
            }
            other => panic!("expected AllRulesBlocked, got {other:?}"),
        }
    }

    #[test]
    fn circular_support_is_reported() {
        let (g, model) = explainer_for("x :- y. y :- x.");
        let ex = Explainer::new(&g, &model);
        let x = g.find_atom_by_name("x", &[]).unwrap();
        match ex.explain(x) {
            Reason::AllRulesBlocked { witnesses } => {
                assert!(matches!(
                    witnesses[0].1,
                    Witness::UnfoundedPositiveSubgoal(_) | Witness::FalsePositiveSubgoal(_)
                ));
            }
            other => panic!("expected AllRulesBlocked, got {other:?}"),
        }
    }

    #[test]
    fn undefined_atoms_point_at_undefined_literals() {
        let (g, model) = explainer_for("p :- not q. q :- not p.");
        let ex = Explainer::new(&g, &model);
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let q = g.find_atom_by_name("q", &[]).unwrap();
        match ex.explain(p) {
            Reason::SuspendedOn { atoms } => assert_eq!(atoms, vec![q]),
            other => panic!("expected SuspendedOn, got {other:?}"),
        }
    }

    #[test]
    fn render_produces_a_tree_and_cuts_cycles() {
        let (g, model) = explainer_for("a. b :- a. c :- b, not d. x :- y. y :- x.");
        let ex = Explainer::new(&g, &model);
        let c = g.find_atom_by_name("c", &[]).unwrap();
        let tree = ex.render(c, 5);
        assert!(tree.contains("c is TRUE"));
        assert!(tree.contains("b is TRUE"));
        assert!(tree.contains("a is TRUE"));
        assert!(tree.contains("not d"));
        let x = g.find_atom_by_name("x", &[]).unwrap();
        let tree = ex.render(x, 5);
        assert!(tree.contains("x is FALSE"));
    }

    #[test]
    fn every_atom_gets_a_valid_reason() {
        // Sweep a mixed program; the explanation kind must match the truth
        // value everywhere.
        let (g, model) =
            explainer_for("a. b :- a, not c. c :- not b. d :- e. e :- d. f :- not a. g :- b.");
        let ex = Explainer::new(&g, &model);
        for id in 0..g.atom_count() as u32 {
            let atom = AtomId(id);
            let reason = ex.explain(atom);
            match model.truth(id) {
                Truth::True => assert!(matches!(reason, Reason::DerivedBy { .. })),
                Truth::False => assert!(matches!(
                    reason,
                    Reason::NoRules | Reason::AllRulesBlocked { .. }
                )),
                Truth::Undefined => {
                    assert!(matches!(reason, Reason::SuspendedOn { .. }))
                }
            }
        }
    }
}
