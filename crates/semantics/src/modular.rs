//! Component-wise (modular) evaluation of the well-founded model, **in
//! place** over the global ground program.
//!
//! Section 9 of the paper asks for "classes of unstratified programs and
//! queries on them for which the alternating fixpoint semantics is
//! computationally tractable". The workhorse answer in later systems
//! (modular stratification, Ross \[41\]; splitting sets; Lonc &
//! Truszczyński's component-wise bound) is to run the alternating fixpoint
//! **per strongly connected component** of the atom dependency graph,
//! bottom-up, so the worst-case `O(|H|·|P_H|)` cost is paid per component:
//! a program that is a long chain of small knots costs the sum of the
//! knots, not the square of the chain.
//!
//! Unlike a textbook implementation, no subprogram is ever constructed.
//! The dependency graph is condensed once into a reusable
//! [`Condensation`] (atom → component ids in topological order, per-
//! component atom and rule slices), and each component is evaluated by
//! **index-restricted closures** directly against the global
//! [`PartialModel`]:
//!
//! * components are processed in dependency order, so when a component is
//!   evaluated every body literal on a lower component is already decided
//!   (or known undefined);
//! * each rule of the component is classified once per evaluation:
//!   decided boundary literals either drop out (true positive / false
//!   negative) or kill the rule (false positive / true negative), in-
//!   component literals are kept as local counter targets, and a literal
//!   on an *undefined* lower atom marks the rule `ext_undef` — the
//!   in-place equivalent of pinning the boundary atom with the
//!   self-negation gadget `u ← ¬u`: such a rule can never fire in the
//!   increasing **under**-closures (the gadget atom is not derivable from
//!   an even iterate) and always can in the decreasing **over**-closures
//!   (the gadget atom is derivable from every odd iterate);
//! * the alternating fixpoint then runs over the component's atoms alone,
//!   with Dowling–Gallier counter closures over the component's rule
//!   slice — no symbol interning, no hash maps, no allocation beyond a
//!   handful of reused scratch vectors.
//!
//! The result is identical to the global alternating fixpoint (checked by
//! a differential property test and by the engine's differential CI
//! test). [`modular_wfs_update`] additionally supports **per-component
//! warm re-solves**: given the previous model and the set of atoms whose
//! truth may have changed (the forward dependency cone of a fact *or
//! rule* delta — for a rule delta, the cone of the heads whose rule sets
//! changed), components disjoint from the cone copy their stored truth
//! values verbatim instead of being re-derived — the engine's `Session`
//! uses this to make update-heavy workloads pay only for the cone they
//! touch. The reuse check is **by atom id**, not component id: a
//! mutation repairs the condensation in place
//! (`Condensation::apply_delta` renumbers component ids inside the
//! delta's window), but atom ids are stable across in-place mutations,
//! so the repaired condensation still reuses every component outside the
//! cone. Atoms interned after the previous solve (heads and bodies a new
//! rule brought into the program) fail the `a < old_n` universe check
//! and are always evaluated.
//!
//! Evaluation is structured as a **task DAG** rather than a loop: every
//! component reads settled lower components through a shared immutable
//! [`TruthBoard`] (one atomic slot per atom) and writes verdicts only
//! into its own component's slots, so evaluating a component is a pure
//! `Send` task and any [`Scheduler`] that respects the condensation's
//! dependency edges — including the work-stealing
//! [`Wavefront`](crate::schedule::Wavefront) pool — produces the same
//! board. The final [`PartialModel`] is committed by a deterministic
//! ordered scan of the board, so the model is bit-identical regardless
//! of thread count or interleaving. [`modular_wfs_update`] is the
//! sequential entry point; [`modular_wfs_scheduled`] takes the scheduler
//! explicitly.

use crate::schedule::{SchedRun, Scheduler, Sequential};
use afp_core::interp::{PartialModel, Truth};
use afp_datalog::atoms::AtomId;
use afp_datalog::bitset::AtomSet;
use afp_datalog::depgraph::Condensation;
use afp_datalog::program::GroundProgram;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Result of the modular computation.
#[derive(Debug, Clone)]
pub struct ModularResult {
    /// The well-founded partial model (identical to the global one).
    pub model: PartialModel,
    /// Number of strongly connected components in the condensation.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Components actually evaluated by this call.
    pub evaluated: usize,
    /// Components whose truth values were copied from a previous model
    /// (always `0` unless called through [`modular_wfs_update`]).
    pub reused: usize,
    /// Atoms covered by the reused components.
    pub reused_atoms: usize,
    /// Scheduler counters for the evaluation (how the task DAG ran).
    pub sched: SchedRun,
}

/// Compute the well-founded model component by component, condensing the
/// dependency graph first. Use [`modular_wfs_with`] to reuse an existing
/// [`Condensation`] across solves.
pub fn modular_wfs(prog: &GroundProgram) -> ModularResult {
    let cond = Condensation::of(prog);
    modular_wfs_with(prog, &cond)
}

/// Compute the well-founded model over a precomputed condensation.
pub fn modular_wfs_with(prog: &GroundProgram, cond: &Condensation) -> ModularResult {
    modular_wfs_update(prog, cond, None)
}

/// Component-wise evaluation with **per-component reuse**: when
/// `previous` is `Some((old_model, affected))`, any component all of
/// whose atoms (a) existed at the time of `old_model` and (b) lie outside
/// `affected` copies its old truth values instead of being re-evaluated.
///
/// # Soundness
/// `affected` must contain every atom whose set of rules changed since
/// `old_model` was computed, **closed under the dependent (forward)
/// direction of the dependency graph**: if `affected` holds some body
/// atom of a rule, it must hold the rule's head too, transitively. Atoms
/// outside such a cone keep their truth values by the relevance/splitting
/// argument — none of their rules changed and nothing they depend on
/// changed. `cond` must condense the *current* program.
pub fn modular_wfs_update(
    prog: &GroundProgram,
    cond: &Condensation,
    previous: Option<(&PartialModel, &AtomSet)>,
) -> ModularResult {
    modular_wfs_scheduled(prog, cond, previous, &Sequential)
}

/// [`modular_wfs_update`] with an explicit [`Scheduler`]: the components
/// that survive the reuse prepass become a [task
/// graph](Condensation::task_graph) and the scheduler runs them — in
/// ascending order on the calling thread ([`Sequential`]) or as a
/// parallel wavefront ([`Wavefront`](crate::schedule::Wavefront)). The
/// resulting model is bit-identical for every scheduler and thread
/// count: tasks write disjoint board slots and the model is committed by
/// an ordered scan (see the module docs).
pub fn modular_wfs_scheduled(
    prog: &GroundProgram,
    cond: &Condensation,
    previous: Option<(&PartialModel, &AtomSet)>,
    sched: &dyn Scheduler,
) -> ModularResult {
    let n = prog.atom_count();
    let board = TruthBoard::new(n);
    let mut scheduled: Vec<u32> = Vec::new();
    let mut reused = 0usize;
    let mut reused_atoms = 0usize;

    // Reuse prepass: settle copied components on the board up front;
    // everything else becomes a task. Copied components need no edges —
    // they are settled before any task starts, so the task graph only
    // spans `scheduled` (dependencies on dropped components are already
    // satisfied).
    for comp in 0..cond.len() {
        let atoms = cond.atoms(comp);
        if let Some((old, affected)) = previous {
            let old_n = old.pos.universe() as u32;
            if atoms.iter().all(|&a| a < old_n && !affected.contains(a)) {
                for &a in atoms {
                    match old.truth(a) {
                        Truth::True => board.set(a, Truth::True),
                        Truth::False => board.set(a, Truth::False),
                        Truth::Undefined => {}
                    }
                }
                reused += 1;
                reused_atoms += atoms.len();
                continue;
            }
        }
        scheduled.push(comp as u32);
    }

    let graph = cond.task_graph(prog, &scheduled);
    // Per-worker scratch, lazily materialized: worker `w` owns slot `w`
    // for the duration of each task (the scheduler contract), so the
    // mutexes are uncontended; a single-worker run allocates exactly one
    // scratch, same as the pre-scheduler loop.
    let scratch: Vec<Mutex<Option<ComponentEval>>> =
        (0..sched.workers()).map(|_| Mutex::new(None)).collect();
    let run = sched.run(&graph, &|comp, w| {
        let mut slot = scratch[w].lock().unwrap();
        let eval = slot.get_or_insert_with(|| ComponentEval::new(n, prog.rule_count()));
        eval.evaluate(prog, cond, comp as usize, &board);
    });

    ModularResult {
        model: board.into_model(),
        components: cond.len(),
        largest_component: cond.largest(),
        evaluated: scheduled.len(),
        reused,
        reused_atoms,
        sched: run,
    }
}

/// Shared verdict board: one atomic slot per atom of the global program.
/// Components *read* settled lower components and *write* only their own
/// atoms' slots, so concurrent tasks never race on a slot; the
/// acquire/release pairs (together with the scheduler's release-edge
/// synchronization) make every settled verdict visible to dependents.
struct TruthBoard {
    slots: Vec<AtomicU8>,
}

/// Slot encodings. `UNDEF` is the initial state and is never written.
const UNDEF: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

impl TruthBoard {
    fn new(n: usize) -> TruthBoard {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || AtomicU8::new(UNDEF));
        TruthBoard { slots }
    }

    fn truth(&self, a: u32) -> Truth {
        match self.slots[a as usize].load(Ordering::Acquire) {
            TRUE => Truth::True,
            FALSE => Truth::False,
            _ => Truth::Undefined,
        }
    }

    fn set(&self, a: u32, t: Truth) {
        let v = match t {
            Truth::True => TRUE,
            Truth::False => FALSE,
            Truth::Undefined => UNDEF,
        };
        self.slots[a as usize].store(v, Ordering::Release);
    }

    /// Deterministic ordered commit: scan the slots in atom-id order into
    /// a [`PartialModel`] — the same model whatever schedule filled the
    /// board.
    fn into_model(self) -> PartialModel {
        let n = self.slots.len();
        let mut model = PartialModel::empty(n);
        for (a, slot) in self.slots.into_iter().enumerate() {
            match slot.into_inner() {
                TRUE => {
                    model.pos.insert(a as u32);
                }
                FALSE => {
                    model.neg.insert(a as u32);
                }
                _ => {}
            }
        }
        model
    }
}

/// How one partially-evaluated rule of the current component behaves.
#[derive(Clone, Copy)]
struct LocalRule {
    /// Head atom, as a local (within-component) index.
    head: u32,
    /// Number of positive body literals on atoms of this component.
    pos_in: u32,
    /// Range into `ComponentEval::neg_lits` of this rule's in-component
    /// negative literals (local indices).
    neg_start: u32,
    neg_end: u32,
    /// Some boundary literal is on an undefined lower atom: the rule is
    /// blocked in under-closures and enabled in over-closures.
    ext_undef: bool,
    /// Some boundary literal is decided against the rule.
    dead: bool,
}

/// Sentinel for "this rule cannot fire in the current closure".
const BLOCKED: u32 = u32::MAX;

/// Reusable scratch for evaluating one component at a time against the
/// global model. All vectors are allocated once and reused; the
/// global-sized maps (`local_ix`, `rule_slot`) are only ever read for
/// atoms/rules of the component being evaluated, so they need no
/// clearing between components.
struct ComponentEval {
    /// Global atom id → local index (valid for the current component).
    local_ix: Vec<u32>,
    /// Global rule id → local rule index (valid for rules whose head is
    /// in the current component).
    rule_slot: Vec<u32>,
    /// The current component's partially evaluated rules.
    rules: Vec<LocalRule>,
    /// Flat storage for in-component negative literals, local indices.
    neg_lits: Vec<u32>,
    /// Per local rule: positive subgoals not yet derived, or [`BLOCKED`].
    pos_rem: Vec<u32>,
    /// Work queue of freshly derived local atoms.
    queue: Vec<u32>,
}

impl ComponentEval {
    fn new(atom_count: usize, rule_count: usize) -> ComponentEval {
        ComponentEval {
            local_ix: vec![0; atom_count],
            rule_slot: vec![0; rule_count],
            rules: Vec::new(),
            neg_lits: Vec::new(),
            pos_rem: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// Decide the atoms of component `comp`, reading settled lower
    /// components from `board` and writing only this component's slots.
    fn evaluate(
        &mut self,
        prog: &GroundProgram,
        cond: &Condensation,
        comp: usize,
        board: &TruthBoard,
    ) {
        let atoms = cond.atoms(comp);
        let rule_ids = cond.rules(comp);

        // Fast path for singleton components without a self-referencing
        // rule — the overwhelmingly common case. The atom is decided
        // directly from the (already settled) lower components.
        if atoms.len() == 1 && self.try_singleton(prog, atoms[0], rule_ids, board) {
            return;
        }

        // ---- Classify the component's rules against the model ----------
        let cid = cond.component_of(atoms[0]);
        for (i, &a) in atoms.iter().enumerate() {
            self.local_ix[a as usize] = i as u32;
        }
        self.rules.clear();
        self.neg_lits.clear();
        for &rid in rule_ids {
            self.rule_slot[rid as usize] = self.rules.len() as u32;
            let r = prog.rule(rid);
            let mut lr = LocalRule {
                head: self.local_ix[r.head.index()],
                pos_in: 0,
                neg_start: self.neg_lits.len() as u32,
                neg_end: 0,
                ext_undef: false,
                dead: false,
            };
            for &q in r.pos.iter() {
                if cond.component_of(q.0) == cid {
                    lr.pos_in += 1;
                } else {
                    match board.truth(q.0) {
                        Truth::True => {}
                        Truth::False => lr.dead = true,
                        Truth::Undefined => lr.ext_undef = true,
                    }
                }
            }
            for &q in r.neg.iter() {
                if cond.component_of(q.0) == cid {
                    self.neg_lits.push(self.local_ix[q.index()]);
                } else {
                    match board.truth(q.0) {
                        Truth::False => {}
                        Truth::True => lr.dead = true,
                        Truth::Undefined => lr.ext_undef = true,
                    }
                }
            }
            lr.neg_end = self.neg_lits.len() as u32;
            self.rules.push(lr);
        }

        // ---- Alternating fixpoint over the component's atoms -----------
        // Ĩ₀ = ∅ locally; boundary-undefined rules are blocked in the
        // under-closures and enabled in the over-closures (see module
        // docs for why this is exactly the `u ← ¬u` gadget semantics).
        let k = atoms.len();
        let mut under = AtomSet::empty(k);
        let (a_tilde, a_plus) = loop {
            let sp_under = self.closure(prog, cond, cid, atoms, false, &under);
            let over = sp_under.complement();
            if over == under {
                break (under, sp_under);
            }
            let sp_over = self.closure(prog, cond, cid, atoms, true, &over);
            let mut next_under = sp_over.complement();
            next_under.union_with(&under);
            if next_under == under {
                break (under, sp_under);
            }
            under = next_under;
        };

        for (i, &a) in atoms.iter().enumerate() {
            if a_plus.contains(i as u32) {
                board.set(a, Truth::True);
            } else if a_tilde.contains(i as u32) {
                board.set(a, Truth::False);
            }
        }
    }

    /// Local `S_P(Ĩ)` over the component: a counter-based Horn closure of
    /// the component's rules with the in-component negative literals read
    /// from `i_tilde` and boundary-undefined rules enabled only when
    /// `optimistic`.
    fn closure(
        &mut self,
        prog: &GroundProgram,
        cond: &Condensation,
        cid: u32,
        atoms: &[u32],
        optimistic: bool,
        i_tilde: &AtomSet,
    ) -> AtomSet {
        let mut derived = AtomSet::empty(atoms.len());
        self.pos_rem.clear();
        self.queue.clear();
        for lr in &self.rules {
            if lr.dead || (lr.ext_undef && !optimistic) {
                self.pos_rem.push(BLOCKED);
                continue;
            }
            let negs = &self.neg_lits[lr.neg_start as usize..lr.neg_end as usize];
            if !negs.iter().all(|&l| i_tilde.contains(l)) {
                self.pos_rem.push(BLOCKED);
                continue;
            }
            self.pos_rem.push(lr.pos_in);
            if lr.pos_in == 0 && derived.insert(lr.head) {
                self.queue.push(lr.head);
            }
        }
        while let Some(local) = self.queue.pop() {
            let global = atoms[local as usize];
            for &rid in prog.rules_with_pos(AtomId(global)) {
                if cond.component_of(prog.rule(rid).head.0) != cid {
                    continue; // a dependent rule of a higher component
                }
                let slot = self.rule_slot[rid as usize] as usize;
                let rem = &mut self.pos_rem[slot];
                if *rem == BLOCKED {
                    continue;
                }
                *rem -= 1;
                if *rem == 0 {
                    let head = self.rules[slot].head;
                    if derived.insert(head) {
                        self.queue.push(head);
                    }
                }
            }
        }
        derived
    }

    /// Decide a singleton component without a self-referencing rule
    /// directly from the board: true if some body is all-true, false if
    /// every body has a false literal, undefined otherwise. Returns
    /// `false` (not handled) when the atom's rules mention the atom
    /// itself — those go through the general alternating path.
    fn try_singleton(
        &mut self,
        prog: &GroundProgram,
        atom: u32,
        rule_ids: &[afp_datalog::RuleId],
        board: &TruthBoard,
    ) -> bool {
        let atom = AtomId(atom);
        if rule_ids.is_empty() {
            board.set(atom.0, Truth::False);
            return true;
        }
        let self_ref = rule_ids.iter().any(|&rid| {
            let r = prog.rule(rid);
            r.pos.contains(&atom) || r.neg.contains(&atom)
        });
        if self_ref {
            return false;
        }
        let mut any_undefined = false;
        for &rid in rule_ids {
            let r = prog.rule(rid);
            let mut body = Truth::True;
            for &q in r.pos.iter() {
                match board.truth(q.0) {
                    Truth::False => {
                        body = Truth::False;
                        break;
                    }
                    Truth::Undefined => body = Truth::Undefined,
                    Truth::True => {}
                }
            }
            if body != Truth::False {
                for &q in r.neg.iter() {
                    match board.truth(q.0) {
                        Truth::True => {
                            body = Truth::False;
                            break;
                        }
                        Truth::Undefined => body = Truth::Undefined,
                        Truth::False => {}
                    }
                }
            }
            match body {
                Truth::True => {
                    board.set(atom.0, Truth::True);
                    return true;
                }
                Truth::Undefined => any_undefined = true,
                Truth::False => {}
            }
        }
        if !any_undefined {
            board.set(atom.0, Truth::False);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    fn check(src: &str) {
        let g = parse_ground(src);
        let global = alternating_fixpoint(&g);
        let modular = modular_wfs(&g);
        assert_eq!(global.model, modular.model, "on {src}");
    }

    #[test]
    fn matches_global_on_paper_examples() {
        check(
            "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
             p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
             p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        );
        check("p :- not q. q :- not p. r :- p. r :- q. s :- not r.");
        check("a. b :- a, not c. c :- not b. d :- b, c.");
        check("v :- not v. w :- not v.");
        check("x :- y. y :- x. z :- not x.");
    }

    #[test]
    fn undefined_boundaries_propagate() {
        // p/q undefined (2-cycle); r depends on p positively; s negatively;
        // both must stay undefined; t depends on decided u.
        check("p :- not q. q :- not p. r :- p. s :- not p. u. t :- u, not p.");
    }

    #[test]
    fn undefined_boundary_feeding_a_knot() {
        // The boundary-undefined atom u feeds a genuine 2-cycle; the knot
        // must stay undefined, exercising `ext_undef` inside the
        // alternating loop rather than the singleton fast path.
        check("u :- not v. v :- not u. a :- u, not b. b :- not a.");
        check("u :- not v. v :- not u. a :- not u, not b. b :- not a, u.");
    }

    #[test]
    fn self_referencing_singletons() {
        check("v :- not v.");
        check("x :- x."); // positive self-loop: false
        check("w. v :- v, w."); // positive self-loop with true context
        check("v :- not v, q. q :- not r. r :- not q."); // gadget context
    }

    #[test]
    fn chain_of_knots_statistics() {
        // Ten independent 2-cycles chained through decided links: many
        // small components, largest of size 2.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("a{i} :- not b{i}. b{i} :- not a{i}.\n"));
            if i > 0 {
                src.push_str(&format!("link{i} :- a{i}, not a{}.\n", i - 1));
            }
        }
        let g = parse_ground(&src);
        let modular = modular_wfs(&g);
        let global = alternating_fixpoint(&g);
        assert_eq!(modular.model, global.model);
        assert!(modular.components >= 10);
        assert!(modular.largest_component <= 2);
        assert_eq!(modular.evaluated, modular.components);
        assert_eq!(modular.reused, 0);
    }

    #[test]
    fn facts_and_empty_components() {
        check("a. b. c :- a, b. d :- nothere.");
    }

    #[test]
    fn update_reuses_untouched_components() {
        // Two independent halves; mark only the right half affected and
        // feed a deliberately *wrong* previous model for the left half —
        // reuse must copy it verbatim, proving the left was not re-run.
        let g = parse_ground("l1. l2 :- l1. r1. r2 :- r1, not r3.");
        let cond = Condensation::of(&g);
        let cold = modular_wfs_with(&g, &cond);

        let l1 = g.find_atom_by_name("l1", &[]).unwrap().0;
        let l2 = g.find_atom_by_name("l2", &[]).unwrap().0;
        let mut fake_prev = cold.model.clone();
        fake_prev.pos.remove(l2); // wrong on purpose: l2 is really true

        let mut affected = g.empty_set();
        for name in ["r1", "r2", "r3"] {
            affected.insert(g.find_atom_by_name(name, &[]).unwrap().0);
        }
        let warm = modular_wfs_update(&g, &cond, Some((&fake_prev, &affected)));
        assert!(warm.reused >= 2, "left components must be copied");
        assert!(warm.model.pos.contains(l1));
        assert!(
            !warm.model.pos.contains(l2),
            "reuse must copy the stored value, not recompute"
        );

        // With the correct previous model the result matches cold exactly.
        let warm = modular_wfs_update(&g, &cond, Some((&cold.model, &affected)));
        assert_eq!(warm.model, cold.model);
        assert!(warm.reused > 0 && warm.evaluated < warm.components);
    }

    #[test]
    fn update_with_grown_universe_evaluates_new_atoms() {
        // Previous model over a smaller universe: components containing
        // new atoms must be evaluated, old disjoint ones reused.
        let old = parse_ground("a. b :- a.");
        let cond_old = Condensation::of(&old);
        let prev = modular_wfs_with(&old, &cond_old).model;

        let g = parse_ground("a. b :- a. c :- not d. d :- not c.");
        let cond = Condensation::of(&g);
        let affected = g.empty_set();
        let r = modular_wfs_update(&g, &cond, Some((&prev, &affected)));
        assert_eq!(r.model, alternating_fixpoint(&g).model);
        assert!(r.reused >= 2);
        assert!(r.evaluated >= 1, "the new {{c, d}} knot is evaluated");
    }

    #[test]
    fn rule_delta_cone_invalidation_reuses_outside_components() {
        // Simulate what the engine does for a *rule* assert: the program
        // gains a rule (and possibly atoms), the condensation is rebuilt,
        // and `affected` holds the forward cone of the new rule's head.
        // Components outside the cone must be copied even though every
        // component id changed.
        let old = parse_ground("k1 :- not k2. k2 :- not k1. a. b :- a, not c.");
        let prev = modular_wfs(&old).model;

        // Same program + `c :- a.` (changes c's rule set, hence b's and
        // c's truth) + a brand-new knot. Atom ids of the old atoms are
        // stable by construction of the parse order.
        let g = parse_ground(
            "k1 :- not k2. k2 :- not k1. a. b :- a, not c. c :- a.
             n1 :- not n2. n2 :- not n1.",
        );
        let cond = Condensation::of(&g);
        let mut affected = g.empty_set();
        for name in ["c", "b"] {
            affected.insert(g.find_atom_by_name(name, &[]).unwrap().0);
        }
        let r = modular_wfs_update(&g, &cond, Some((&prev, &affected)));
        assert_eq!(r.model, alternating_fixpoint(&g).model);
        let c = g.find_atom_by_name("c", &[]).unwrap().0;
        let b = g.find_atom_by_name("b", &[]).unwrap().0;
        assert!(r.model.pos.contains(c), "the new rule derives c");
        assert!(r.model.neg.contains(b), "b flips: not c now fails");
        assert!(r.reused >= 2, "{{k1,k2}} and a are outside the cone");
        assert!(
            r.evaluated >= 3,
            "the cone and the brand-new {{n1,n2}} knot are evaluated"
        );
    }

    #[test]
    fn differential_on_random_programs() {
        for seed in 0..40u64 {
            let g = random_program(seed);
            let global = alternating_fixpoint(&g);
            let modular = modular_wfs(&g);
            assert_eq!(global.model, modular.model, "seed {seed}");
        }
    }

    #[test]
    fn scheduled_matches_sequential_on_random_programs() {
        use crate::schedule::{Wavefront, WavefrontOptions};
        let pool = Wavefront::with_options(
            4,
            WavefrontOptions {
                min_par_tasks: 0,
                chaos: None,
            },
        );
        for seed in 0..20u64 {
            let g = random_program(seed);
            let cond = Condensation::of(&g);
            let seq = modular_wfs_scheduled(&g, &cond, None, &Sequential);
            let par = modular_wfs_scheduled(&g, &cond, None, &pool);
            assert_eq!(seq.model, par.model, "seed {seed}");
            assert_eq!(seq.evaluated, par.evaluated);
            assert_eq!(seq.sched.tasks, par.sched.tasks);
            assert_eq!(seq.sched.wavefronts, par.sched.wavefronts);
        }
    }

    #[test]
    fn scheduled_matches_under_adversarial_completion_orders() {
        use crate::schedule::{Wavefront, WavefrontOptions};
        for seed in 0..12u64 {
            let g = random_program(seed);
            let cond = Condensation::of(&g);
            let seq = modular_wfs_scheduled(&g, &cond, None, &Sequential);
            for chaos in 0..4u64 {
                let pool = Wavefront::with_options(
                    3,
                    WavefrontOptions {
                        min_par_tasks: 0,
                        chaos: Some(chaos),
                    },
                );
                let par = modular_wfs_scheduled(&g, &cond, None, &pool);
                assert_eq!(seq.model, par.model, "seed {seed} chaos {chaos}");
            }
        }
    }

    #[test]
    fn scheduled_warm_reuse_matches_sequential() {
        use crate::schedule::{Wavefront, WavefrontOptions};
        let g = parse_ground(
            "k1 :- not k2. k2 :- not k1. a. b :- a, not c. c :- a.
             n1 :- not n2. n2 :- not n1.",
        );
        let cond = Condensation::of(&g);
        let cold = modular_wfs_with(&g, &cond);
        let mut affected = g.empty_set();
        for name in ["c", "b"] {
            affected.insert(g.find_atom_by_name(name, &[]).unwrap().0);
        }
        let pool = Wavefront::with_options(
            2,
            WavefrontOptions {
                min_par_tasks: 0,
                chaos: None,
            },
        );
        let seq = modular_wfs_update(&g, &cond, Some((&cold.model, &affected)));
        let par = modular_wfs_scheduled(&g, &cond, Some((&cold.model, &affected)), &pool);
        assert_eq!(seq.model, par.model);
        assert_eq!(seq.model, cold.model);
        assert_eq!(seq.reused, par.reused);
        assert_eq!(seq.evaluated, par.evaluated);
        assert!(par.sched.tasks == par.evaluated && seq.sched.tasks == seq.evaluated);
    }

    /// Tiny deterministic random program generator (xorshift), local to
    /// the tests so the crate needs no dev-dependency on afp-bench.
    fn random_program(seed: u64) -> GroundProgram {
        use afp_datalog::program::GroundProgramBuilder;
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n_atoms = 3 + (next() % 10) as usize;
        let n_rules = 2 + (next() % 18) as usize;
        let mut b = GroundProgramBuilder::new();
        let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
        for _ in 0..n_rules {
            let head = atoms[(next() % n_atoms as u64) as usize];
            let body_len = (next() % 4) as usize;
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for _ in 0..body_len {
                let a = atoms[(next() % n_atoms as u64) as usize];
                if next() % 2 == 0 {
                    neg.push(a);
                } else {
                    pos.push(a);
                }
            }
            b.rule(head, pos, neg);
        }
        b.finish()
    }
}
