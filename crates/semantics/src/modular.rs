//! Component-wise (modular) evaluation of the well-founded model.
//!
//! Section 9 of the paper asks for "classes of unstratified programs and
//! queries on them for which the alternating fixpoint semantics is
//! computationally tractable". The workhorse answer in later systems
//! (modular stratification, Ross \[41\]; splitting sets) is to run the
//! alternating fixpoint **per strongly connected component** of the atom
//! dependency graph, bottom-up:
//!
//! * components are processed in dependency order, so when a component is
//!   evaluated every body literal on a lower component is already decided
//!   (or known undefined);
//! * decided literals are partially evaluated away (true literals are
//!   dropped, false literals delete the rule);
//! * literals on *undefined* lower atoms are kept, and the undefined atom
//!   is pinned inside the component's subprogram with the self-negation
//!   gadget `u ← ¬u`, whose well-founded value is undefined — the
//!   three-valued analogue of adding a fact;
//! * the alternating fixpoint of the small subprogram then decides the
//!   component's atoms.
//!
//! The result is identical to the global alternating fixpoint (checked by
//! a differential property test), but the worst-case `O(|H|·|P_H|)` cost
//! is paid per component: a program that is a long chain of small knots
//! costs the sum of the knots, not the square of the chain.

use afp_core::interp::{PartialModel, Truth};
use afp_datalog::atoms::AtomId;
use afp_datalog::depgraph::tarjan_sccs;
use afp_datalog::fx::{FxHashMap, FxHashSet};
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};

/// Result of the modular computation.
#[derive(Debug, Clone)]
pub struct ModularResult {
    /// The well-founded partial model (identical to the global one).
    pub model: PartialModel,
    /// Number of strongly connected components processed.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

/// Compute the well-founded model component by component.
pub fn modular_wfs(prog: &GroundProgram) -> ModularResult {
    let n = prog.atom_count();
    // Atom dependency graph over positive and negative arcs.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in prog.rules() {
        for &q in r.pos.iter().chain(r.neg.iter()) {
            adj[r.head.index()].push(q.index());
        }
    }
    let sccs = tarjan_sccs(&adj);
    let mut model = PartialModel::empty(n);
    let mut largest = 0;
    for comp in &sccs {
        largest = largest.max(comp.len());
        evaluate_component(prog, comp, &mut model);
    }
    ModularResult {
        model,
        components: sccs.len(),
        largest_component: largest,
    }
}

/// Decide the atoms of one component, reading lower components from
/// `model` and writing the component's atoms back into it.
fn evaluate_component(prog: &GroundProgram, comp: &[usize], model: &mut PartialModel) {
    // Fast paths for singleton components — the overwhelmingly common
    // case. A singleton atom without a self-referencing rule is decided
    // directly from the (already settled) lower components: true if some
    // body is all-true, false if every body has a false literal,
    // undefined otherwise.
    if comp.len() == 1 {
        let atom = AtomId(comp[0] as u32);
        let rules = prog.rules_with_head(atom);
        if rules.is_empty() {
            model.neg.insert(atom.0);
            return;
        }
        let self_ref = rules.iter().any(|&rid| {
            let r = prog.rule(rid);
            r.pos.contains(&atom) || r.neg.contains(&atom)
        });
        if !self_ref {
            let mut any_undefined = false;
            for &rid in rules {
                let r = prog.rule(rid);
                let mut body = Truth::True;
                for &q in r.pos.iter() {
                    match model.truth(q.0) {
                        Truth::False => {
                            body = Truth::False;
                            break;
                        }
                        Truth::Undefined => body = Truth::Undefined,
                        Truth::True => {}
                    }
                }
                if body != Truth::False {
                    for &q in r.neg.iter() {
                        match model.truth(q.0) {
                            Truth::True => {
                                body = Truth::False;
                                break;
                            }
                            Truth::Undefined => body = Truth::Undefined,
                            Truth::False => {}
                        }
                    }
                }
                match body {
                    Truth::True => {
                        model.pos.insert(atom.0);
                        return;
                    }
                    Truth::Undefined => any_undefined = true,
                    Truth::False => {}
                }
            }
            if !any_undefined {
                model.neg.insert(atom.0);
            }
            return;
        }
    }
    let comp_set: FxHashSet<usize> = comp.iter().copied().collect();
    let in_comp = |a: AtomId| comp_set.contains(&a.index());
    // Build the component subprogram: rules with heads in the component,
    // partially evaluated against `model`; boundary-undefined atoms get
    // the `u ← ¬u` gadget. The subprogram is *anonymous* — it carries an
    // empty symbol store and is never displayed — so no per-component
    // symbol-table clone is paid; local atoms are keyed by their global
    // id encoded as a single propositional symbol index.
    let mut b = GroundProgramBuilder::new();
    let mut local_of: FxHashMap<u32, AtomId> = FxHashMap::default();
    let mut locals: Vec<AtomId> = Vec::new(); // local -> global
    let intern = |global: AtomId,
                  b: &mut GroundProgramBuilder,
                  local_of: &mut FxHashMap<u32, AtomId>,
                  locals: &mut Vec<AtomId>|
     -> AtomId {
        if let Some(&l) = local_of.get(&global.0) {
            return l;
        }
        // Anonymous local atom: reuse the global atom id as the symbol
        // index (unique within the subprogram; names are never resolved).
        let l = b
            .base_mut()
            .intern_atom(afp_datalog::Symbol::from_index(global.index()), &[]);
        local_of.insert(global.0, l);
        locals.push(global);
        l
    };

    let mut gadget_added: FxHashSet<u32> = FxHashSet::default();
    for &a in comp {
        let head_global = AtomId(a as u32);
        'rule: for &rid in prog.rules_with_head(head_global) {
            let r = prog.rule(rid);
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for &q in r.pos.iter() {
                if in_comp(q) {
                    pos.push(intern(q, &mut b, &mut local_of, &mut locals));
                } else {
                    match model.truth(q.0) {
                        Truth::True => {}
                        Truth::False => continue 'rule,
                        Truth::Undefined => {
                            let l = intern(q, &mut b, &mut local_of, &mut locals);
                            if gadget_added.insert(q.0) {
                                b.rule(l, vec![], vec![l]); // u ← ¬u
                            }
                            pos.push(l);
                        }
                    }
                }
            }
            for &q in r.neg.iter() {
                if in_comp(q) {
                    neg.push(intern(q, &mut b, &mut local_of, &mut locals));
                } else {
                    match model.truth(q.0) {
                        Truth::False => {}
                        Truth::True => continue 'rule,
                        Truth::Undefined => {
                            let l = intern(q, &mut b, &mut local_of, &mut locals);
                            if gadget_added.insert(q.0) {
                                b.rule(l, vec![], vec![l]);
                            }
                            neg.push(l);
                        }
                    }
                }
            }
            let head_local = intern(head_global, &mut b, &mut local_of, &mut locals);
            b.rule(head_local, pos, neg);
        }
        // Atoms with no surviving rules still need to exist locally.
        intern(head_global, &mut b, &mut local_of, &mut locals);
    }
    let sub = b.finish();
    let sub_result = afp_core::afp::alternating_fixpoint(&sub);
    // Copy the component atoms' values back (gadget atoms stay untouched:
    // they belong to lower components and are already recorded).
    for (local_ix, &global) in locals.iter().enumerate() {
        if !in_comp(global) {
            continue;
        }
        match sub_result.model.truth(local_ix as u32) {
            Truth::True => {
                model.pos.insert(global.0);
            }
            Truth::False => {
                model.neg.insert(global.0);
            }
            Truth::Undefined => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    fn check(src: &str) {
        let g = parse_ground(src);
        let global = alternating_fixpoint(&g);
        let modular = modular_wfs(&g);
        assert_eq!(global.model, modular.model, "on {src}");
    }

    #[test]
    fn matches_global_on_paper_examples() {
        check(
            "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
             p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
             p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        );
        check("p :- not q. q :- not p. r :- p. r :- q. s :- not r.");
        check("a. b :- a, not c. c :- not b. d :- b, c.");
        check("v :- not v. w :- not v.");
        check("x :- y. y :- x. z :- not x.");
    }

    #[test]
    fn undefined_boundaries_propagate() {
        // p/q undefined (2-cycle); r depends on p positively; s negatively;
        // both must stay undefined; t depends on decided u.
        check("p :- not q. q :- not p. r :- p. s :- not p. u. t :- u, not p.");
    }

    #[test]
    fn chain_of_knots_statistics() {
        // Ten independent 2-cycles chained through decided links: many
        // small components, largest of size 2.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("a{i} :- not b{i}. b{i} :- not a{i}.\n"));
            if i > 0 {
                src.push_str(&format!("link{i} :- a{i}, not a{}.\n", i - 1));
            }
        }
        let g = parse_ground(&src);
        let modular = modular_wfs(&g);
        let global = alternating_fixpoint(&g);
        assert_eq!(modular.model, global.model);
        assert!(modular.components >= 10);
        assert!(modular.largest_component <= 2);
    }

    #[test]
    fn facts_and_empty_components() {
        check("a. b. c :- a, b. d :- nothere.");
    }
}
