//! The well-founded semantics by its original characterization
//! (Van Gelder–Ross–Schlipf, reviewed in Section 6): the least fixpoint of
//!
//! ```text
//! W_P(I) = T_P(I) ∪ ¬·U_P(I)
//! ```
//!
//! where `T_P` is the immediate consequence transformation (Definition 3.7)
//! and `U_P` the greatest unfounded set (Definition 6.1). This is the
//! *baseline* the alternating fixpoint is proved equivalent to
//! (Theorem 7.8); the equivalence is enforced by integration and property
//! tests across the workspace.

use afp_core::interp::PartialModel;
use afp_core::ops;
use afp_datalog::program::GroundProgram;

use crate::unfounded::greatest_unfounded_set;

/// Result of the well-founded computation.
#[derive(Debug, Clone)]
pub struct WfsResult {
    /// The well-founded partial model.
    pub model: PartialModel,
    /// Number of `W_P` applications until the fixpoint.
    pub rounds: usize,
}

/// Compute the well-founded partial model as `lfp(W_P)`.
pub fn well_founded_model(prog: &GroundProgram) -> WfsResult {
    let mut interp = PartialModel::empty(prog.atom_count());
    let mut rounds = 0;
    loop {
        rounds += 1;
        let t = ops::t_p(prog, &interp);
        let u = greatest_unfounded_set(prog, &interp);
        let grew_pos = !t.is_subset(&interp.pos);
        let grew_neg = !u.is_subset(&interp.neg);
        if !grew_pos && !grew_neg {
            return WfsResult {
                model: interp,
                rounds,
            };
        }
        interp.pos.union_with(&t);
        interp.neg.union_with(&u);
        debug_assert!(
            interp.pos.is_disjoint(&interp.neg),
            "W_P iterates stay consistent"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    #[test]
    fn horn_program_totally_defined() {
        let g = parse_ground("a. b :- a. c :- d.");
        let r = well_founded_model(&g);
        assert!(r.model.is_total());
        assert_eq!(g.set_to_names(&r.model.pos), vec!["a", "b"]);
    }

    #[test]
    fn example_5_1_agrees_with_afp() {
        let g = parse_ground(
            "p(a) :- p(c), not p(b). p(b) :- not p(a). p(c).
             p(d) :- p(e), not p(f). p(d) :- p(f), not p(g). p(d) :- p(h).
             p(e) :- p(d). p(f) :- p(e). p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        );
        let wfs = well_founded_model(&g);
        let afp = alternating_fixpoint(&g);
        assert_eq!(wfs.model, afp.model, "Theorem 7.8");
    }

    #[test]
    fn two_cycle_undefined() {
        let g = parse_ground("p :- not q. q :- not p.");
        let r = well_founded_model(&g);
        assert_eq!(r.model.defined_count(), 0);
    }

    #[test]
    fn wfs_model_is_partial_model() {
        for src in [
            "p :- not q. q :- not p. r :- p.",
            "a. b :- a, not c. c :- not b.",
            "v :- not v.",
            "x :- y. y :- x. z :- not x.",
        ] {
            let g = parse_ground(src);
            let r = well_founded_model(&g);
            assert!(r.model.is_partial_model(&g), "on {src}");
        }
    }

    #[test]
    fn positive_loop_becomes_false() {
        let g = parse_ground("x :- y. y :- x. z :- not x.");
        let r = well_founded_model(&g);
        assert_eq!(g.set_to_names(&r.model.neg), vec!["x", "y"]);
        assert_eq!(g.set_to_names(&r.model.pos), vec!["z"]);
        assert!(r.model.is_total());
    }

    #[test]
    fn rounds_are_bounded_by_atoms() {
        // A chain that forces one new conclusion per round.
        let mut src = String::from("p0.\n");
        for i in 1..20 {
            src.push_str(&format!("p{i} :- p{}.\n", i - 1));
        }
        let g = parse_ground(&src);
        let r = well_founded_model(&g);
        assert!(r.model.is_total());
        assert!(r.rounds <= g.atom_count() + 2);
    }
}
