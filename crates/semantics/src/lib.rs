//! # afp-semantics — baseline and comparison semantics
//!
//! The semantics the paper relates the alternating fixpoint to:
//!
//! * [`unfounded`] / [`wfs`] — the original well-founded semantics via
//!   greatest unfounded sets (Section 6); the equivalence with the
//!   alternating fixpoint is Theorem 7.8;
//! * [`stable`] — Gelfond–Lifschitz stable models: GL-reduct, the
//!   `S̃_P`-fixpoint characterization (Section 4), and a
//!   branch-and-propagate enumerator;
//! * [`fitting`] — the Kripke–Kleene three-valued semantics (Section 2.1);
//! * [`stratified`] — locally stratified programs and perfect models
//!   (Section 2.3);
//! * [`inflationary`] — inductive fixpoint logic's inflationary semantics
//!   and the Example 2.2 failure mode (Section 2.2);
//! * [`modular`] — SCC-stratified well-founded evaluation, in place over
//!   the global ground program with per-component warm reuse: the
//!   engine's default well-founded strategy and its answer to the
//!   Section 9 tractability question.

#![warn(missing_docs)]

pub mod explain;
pub mod fitting;
pub mod inflationary;
pub mod modular;
pub mod residual;
pub mod schedule;
pub mod stable;
pub mod stratified;
pub mod unfounded;
pub mod wfs;

pub use explain::{Explainer, Reason, Witness};
pub use fitting::{fitting_model, FittingResult};
pub use inflationary::{inflationary_fixpoint, InflationaryResult, NaiveOutcome};
pub use modular::{
    modular_wfs, modular_wfs_scheduled, modular_wfs_update, modular_wfs_with, ModularResult,
};
pub use residual::{lift_residual_model, residual_program};
pub use schedule::{SchedRun, Scheduler, Sequential, Wavefront, WavefrontOptions};
pub use stable::{
    brute_force_stable, cautious_consequences, enumerate_stable, is_stable, stable_models,
    EnumerateOptions, EnumerateResult,
};
pub use stratified::{is_locally_stratified, local_strata, perfect_model, PerfectResult};
pub use unfounded::{greatest_unfounded_set, is_unfounded_set};
pub use wfs::{well_founded_model, WfsResult};
