//! The Fitting (Kripke–Kleene) three-valued semantics (Section 2.1).
//!
//! Fitting interprets the program completion in three-valued logic: the
//! least fixpoint, in the knowledge ordering, of
//!
//! ```text
//! Φ_P(I)⁺ = { a | some rule for a has body true in I }
//! Φ_P(I)⁻ = { a | every rule for a has body false in I }
//! ```
//!
//! ("failure to prove" = all proof searches fail at some finite depth).
//! The paper recalls the classic objection (Section 2.1): on a cyclic
//! graph, transitive-closure atoms that merely loop are *undefined* under
//! Fitting but false under the well-founded semantics — positive loops are
//! never falsified because no finite failure occurs. The Fitting model is
//! always informationally below the well-founded model; both facts are
//! pinned by tests here and in the integration suite.

use afp_core::interp::{PartialModel, Truth};
use afp_datalog::program::GroundProgram;

/// Result of the Kripke–Kleene computation.
#[derive(Debug, Clone)]
pub struct FittingResult {
    /// The least three-valued fixpoint of `Φ_P`.
    pub model: PartialModel,
    /// Number of `Φ_P` applications.
    pub rounds: usize,
}

/// One application of `Φ_P`.
pub fn phi(prog: &GroundProgram, interp: &PartialModel) -> PartialModel {
    let mut pos = prog.empty_set();
    // Start from "every atom is false" — an atom with no rules keeps the
    // empty (hence false) disjunction of bodies — and remove an atom as
    // soon as one of its rule bodies is true or undefined.
    let mut neg = prog.full_set();
    for r in prog.rules() {
        match interp.body_truth(r) {
            Truth::True => {
                pos.insert(r.head.0);
                neg.remove(r.head.0);
            }
            Truth::Undefined => {
                neg.remove(r.head.0);
            }
            Truth::False => {}
        }
    }
    debug_assert!(pos.is_disjoint(&neg));
    PartialModel::new(pos, neg)
}

/// The Kripke–Kleene model: `lfp(Φ_P)` in the knowledge ordering,
/// computed by iteration from the everywhere-undefined interpretation.
pub fn fitting_model(prog: &GroundProgram) -> FittingResult {
    let mut interp = PartialModel::empty(prog.atom_count());
    let mut rounds = 0;
    loop {
        rounds += 1;
        let next = phi(prog, &interp);
        if next == interp {
            return FittingResult {
                model: interp,
                rounds,
            };
        }
        interp = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    #[test]
    fn horn_chain_fully_decided() {
        let g = parse_ground("a. b :- a. c :- d.");
        let r = fitting_model(&g);
        assert!(r.model.is_total());
        assert_eq!(g.set_to_names(&r.model.pos), vec!["a", "b"]);
        assert_eq!(g.set_to_names(&r.model.neg), vec!["c", "d"]);
    }

    #[test]
    fn positive_loop_stays_undefined_under_fitting() {
        // The Minker-workshop objection: x :- y. y :- x. never *finitely*
        // fails, so Fitting leaves x, y undefined — but WFS falsifies them.
        let g = parse_ground("x :- y. y :- x. z :- not x.");
        let fit = fitting_model(&g);
        assert_eq!(fit.model.defined_count(), 0);
        let wfs = alternating_fixpoint(&g);
        assert!(wfs.model.is_total());
    }

    #[test]
    fn fitting_below_wfs() {
        for src in [
            "p :- not q. q :- not p.",
            "a. b :- a, not c. c :- not b.",
            "x :- y. y :- x. z :- not x.",
            "v :- not v. w :- not x. x :- w.",
        ] {
            let g = parse_ground(src);
            let fit = fitting_model(&g);
            let wfs = alternating_fixpoint(&g);
            assert!(
                fit.model.leq(&wfs.model),
                "Fitting ⊑ WFS must hold on {src}"
            );
        }
    }

    #[test]
    fn cyclic_tc_example() {
        // Ground transitive closure on the 2-cycle {e(1,2), e(2,1)} plus an
        // isolated node 3: under Fitting, tc(1,3) is undefined (the search
        // loops); under WFS it is false.
        let g = parse_ground(
            "e(1,2). e(2,1).
             tc(1,3) :- e(1,2), tc(2,3).
             tc(2,3) :- e(2,1), tc(1,3).",
        );
        let fit = fitting_model(&g);
        let t13 = g.find_atom_by_name("tc", &["1", "3"]).unwrap();
        assert_eq!(fit.model.truth(t13.0), Truth::Undefined);
        let wfs = alternating_fixpoint(&g);
        assert_eq!(wfs.model.truth(t13.0), Truth::False);
    }

    #[test]
    fn negative_two_cycle_undefined_everywhere() {
        let g = parse_ground("p :- not q. q :- not p.");
        let r = fitting_model(&g);
        assert_eq!(r.model.defined_count(), 0);
    }

    #[test]
    fn phi_is_monotone_in_knowledge_order() {
        let g = parse_ground("p :- not q. q :- r. r. s :- p, q.");
        let bottom = PartialModel::empty(g.atom_count());
        let one = phi(&g, &bottom);
        let two = phi(&g, &one);
        assert!(bottom.leq(&one));
        assert!(one.leq(&two));
    }
}
