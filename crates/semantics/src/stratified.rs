//! Stratified and locally stratified (perfect-model) evaluation
//! (Section 2.3).
//!
//! A ground program is *locally stratified* (Przymusiński) when its atom
//! dependency graph has no negative arc inside a strongly connected
//! component; the strata can then be evaluated bottom-up, treating the
//! negative conclusions of lower strata as settled — the *iterated
//! fixpoint*, whose result is the unique **perfect model**.
//!
//! A program with variables is *stratified* when the same condition holds
//! at the predicate level; a stratified program grounds to a locally
//! stratified one (grounding only deletes arcs), so predicate-level
//! evaluation reduces to the ground machinery here.
//!
//! Section 2.4: every locally stratified program has a total well-founded
//! model and a unique stable model, all coinciding with the perfect model —
//! pinned by integration tests.

use afp_core::interp::PartialModel;
use afp_datalog::bitset::AtomSet;
use afp_datalog::depgraph::tarjan_sccs;
use afp_datalog::program::GroundProgram;

/// Atom-level stratum assignment, or `None` when the ground program is not
/// locally stratified (a negative arc within an SCC of the atom dependency
/// graph).
pub fn local_strata(prog: &GroundProgram) -> Option<Vec<u32>> {
    let n = prog.atom_count();
    // Atom dependency graph: head → body atoms.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in prog.rules() {
        for &q in r.pos.iter().chain(r.neg.iter()) {
            adj[r.head.index()].push(q.index());
        }
    }
    let sccs = tarjan_sccs(&adj);
    let mut comp_of = vec![usize::MAX; n];
    for (cid, comp) in sccs.iter().enumerate() {
        for &a in comp {
            comp_of[a as usize] = cid;
        }
    }
    // Negative arc inside a component ⇒ not locally stratified.
    for r in prog.rules() {
        for &q in r.neg.iter() {
            if comp_of[r.head.index()] == comp_of[q.index()] {
                return None;
            }
        }
    }
    // Components arrive in dependency order; accumulate stratum numbers.
    let mut comp_stratum = vec![0u32; sccs.len()];
    for (cid, comp) in sccs.iter().enumerate() {
        let mut s = 0;
        for &a in comp {
            for &rid in prog.rules_with_head(afp_datalog::AtomId(a)) {
                let r = prog.rule(rid);
                for &q in r.pos.iter() {
                    let qc = comp_of[q.index()];
                    if qc != cid {
                        s = s.max(comp_stratum[qc]);
                    }
                }
                for &q in r.neg.iter() {
                    let qc = comp_of[q.index()];
                    debug_assert_ne!(qc, cid);
                    s = s.max(comp_stratum[qc] + 1);
                }
            }
        }
        comp_stratum[cid] = s;
    }
    Some((0..n).map(|a| comp_stratum[comp_of[a]]).collect())
}

/// True iff the ground program is locally stratified.
pub fn is_locally_stratified(prog: &GroundProgram) -> bool {
    local_strata(prog).is_some()
}

/// Result of the iterated-fixpoint evaluation.
#[derive(Debug, Clone)]
pub struct PerfectResult {
    /// The perfect model (always total).
    pub model: PartialModel,
    /// Number of strata evaluated.
    pub strata: usize,
}

/// The perfect model of a locally stratified ground program, by iterated
/// fixpoint over the strata; `None` when the program is not locally
/// stratified.
pub fn perfect_model(prog: &GroundProgram) -> Option<PerfectResult> {
    let strata = local_strata(prog)?;
    let max_stratum = strata.iter().copied().max().unwrap_or(0);
    let mut pos = prog.empty_set();
    let mut neg = prog.empty_set();
    for s in 0..=max_stratum {
        // Least fixpoint of the rules whose head lies in stratum `s`,
        // reading lower strata from (pos, neg). A rule can fire when its
        // negative atoms are settled false and its positive atoms are
        // either settled true (lower strata) or derived in this stratum.
        loop {
            let mut changed = false;
            'rules: for r in prog.rules() {
                if strata[r.head.index()] != s || pos.contains(r.head.0) {
                    continue;
                }
                for &q in r.neg.iter() {
                    // q is in a strictly lower stratum; settled.
                    if pos.contains(q.0) {
                        continue 'rules;
                    }
                }
                for &q in r.pos.iter() {
                    if !pos.contains(q.0) {
                        continue 'rules;
                    }
                }
                pos.insert(r.head.0);
                changed = true;
            }
            if !changed {
                break;
            }
        }
        // Atoms of stratum `s` not derived are now settled false.
        for a in 0..prog.atom_count() as u32 {
            if strata[a as usize] == s && !pos.contains(a) {
                neg.insert(a);
            }
        }
    }
    Some(PerfectResult {
        model: PartialModel::new(pos, neg),
        strata: max_stratum as usize + 1,
    })
}

/// Atoms of a given stratum (diagnostic helper).
pub fn stratum_atoms(strata: &[u32], s: u32, universe: usize) -> AtomSet {
    AtomSet::from_iter(
        universe,
        (0..universe as u32).filter(|&a| strata[a as usize] == s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    #[test]
    fn ntc_is_locally_stratified_and_matches_wfs() {
        // Ground tc/ntc over a 2-node graph (Example 2.2 shape).
        let g = parse_ground(
            "e(a,b).
             tc(a,b) :- e(a,b).
             ntc(b,a) :- not tc(b,a).
             ntc(a,b) :- not tc(a,b).",
        );
        let perfect = perfect_model(&g).expect("locally stratified");
        assert!(perfect.model.is_total());
        let wfs = alternating_fixpoint(&g);
        assert_eq!(perfect.model, wfs.model);
        let ntc_ba = g.find_atom_by_name("ntc", &["b", "a"]).unwrap();
        assert!(perfect.model.pos.contains(ntc_ba.0));
        let ntc_ab = g.find_atom_by_name("ntc", &["a", "b"]).unwrap();
        assert!(perfect.model.neg.contains(ntc_ab.0));
    }

    #[test]
    fn win_move_ground_cycle_not_locally_stratified() {
        // wins(a) depends negatively on wins(b) and vice versa.
        let g = parse_ground("wins(a) :- not wins(b). wins(b) :- not wins(a).");
        assert!(!is_locally_stratified(&g));
        assert!(perfect_model(&g).is_none());
    }

    #[test]
    fn acyclic_negation_is_locally_stratified() {
        // Predicate-level unstratified but ground-level (locally) stratified:
        // the classic even/odd on an acyclic chain.
        let g = parse_ground(
            "even(z).
             even(a) :- not even(b).
             even(b) :- not even(c).",
        );
        let strata = local_strata(&g).expect("acyclic ⇒ locally stratified");
        let ea = g.find_atom_by_name("even", &["a"]).unwrap();
        let eb = g.find_atom_by_name("even", &["b"]).unwrap();
        let ec = g.find_atom_by_name("even", &["c"]).unwrap();
        assert!(strata[ea.index()] > strata[eb.index()]);
        assert!(strata[eb.index()] > strata[ec.index()]);
        let perfect = perfect_model(&g).unwrap();
        // even(c): no rules ⇒ false; even(b): ¬even(c) ⇒ true;
        // even(a): ¬even(b) fails ⇒ false.
        assert!(perfect.model.neg.contains(ec.0));
        assert!(perfect.model.pos.contains(eb.0));
        assert!(perfect.model.neg.contains(ea.0));
    }

    #[test]
    fn perfect_equals_wfs_equals_unique_stable_on_stratified() {
        let g = parse_ground("a. b :- a. c :- not b. d :- not c. e :- d, not c.");
        let perfect = perfect_model(&g).unwrap();
        let wfs = alternating_fixpoint(&g);
        assert_eq!(perfect.model, wfs.model);
        assert!(wfs.is_total);
        let stables = crate::stable::stable_models(&g);
        assert_eq!(stables.len(), 1);
        assert_eq!(stables[0], perfect.model.pos);
    }

    #[test]
    fn positive_cycles_do_not_block_stratification() {
        let g = parse_ground("x :- y. y :- x. z :- not x.");
        let perfect = perfect_model(&g).expect("positive cycles are fine");
        assert_eq!(g.set_to_names(&perfect.model.pos), vec!["z"]);
        assert_eq!(g.set_to_names(&perfect.model.neg), vec!["x", "y"]);
    }

    #[test]
    fn stratum_counts() {
        let g = parse_ground("a. b :- not a. c :- not b.");
        let r = perfect_model(&g).unwrap();
        assert_eq!(r.strata, 3);
    }
}
