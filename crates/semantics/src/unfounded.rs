//! Unfounded sets and the greatest unfounded set `U_P(I)` (Section 6,
//! Definition 6.1).
//!
//! `U ⊆ H` is *unfounded with respect to I* when every rule for every atom
//! of `U` has a **witness of unusability**: either (1) some body literal is
//! false in `I`, or (2) some positive body atom lies in `U` itself. The
//! union of unfounded sets is unfounded, so a greatest unfounded set
//! exists; it supplies the negative conclusions of the well-founded
//! semantics.
//!
//! Computation: `U_P(I) = H − lfp(D)` where
//! `D(X) = {a | some rule for a has no literal false in I and all its
//! positive subgoals in X}` — an atom escapes unfoundedness exactly when it
//! has a rule that is not blocked by `I` and whose positive subgoals all
//! escape too. `lfp(D)` is a Horn-style closure, computed with the same
//! counter scheme as `S_P`, so `U_P` costs one linear pass.

use afp_core::interp::PartialModel;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;

/// The greatest unfounded set of `prog` with respect to `interp`.
pub fn greatest_unfounded_set(prog: &GroundProgram, interp: &PartialModel) -> AtomSet {
    // Counter propagation for lfp(D). A rule is *blocked* when some body
    // literal is false in I (witness of type 1); blocked rules never fire.
    let n_rules = prog.rule_count();
    let mut pos_remaining: Vec<u32> = Vec::with_capacity(n_rules);
    let mut blocked: Vec<bool> = Vec::with_capacity(n_rules);
    let mut escaped = prog.empty_set(); // lfp(D)
    let mut queue: Vec<u32> = Vec::new();

    for r in prog.rules() {
        let is_blocked = r.pos.iter().any(|&q| interp.neg.contains(q.0))
            || r.neg.iter().any(|&q| interp.pos.contains(q.0));
        blocked.push(is_blocked);
        pos_remaining.push(r.pos.len() as u32);
        if !is_blocked && r.pos.is_empty() && escaped.insert(r.head.0) {
            queue.push(r.head.0);
        }
    }
    while let Some(atom) = queue.pop() {
        for &rid in prog.rules_with_pos(afp_datalog::AtomId(atom)) {
            if blocked[rid as usize] {
                continue;
            }
            let c = &mut pos_remaining[rid as usize];
            *c -= 1;
            if *c == 0 {
                let head = prog.rule(rid).head;
                if escaped.insert(head.0) {
                    queue.push(head.0);
                }
            }
        }
    }
    escaped.complement()
}

/// Checker for Definition 6.1: is `set` an unfounded set of `prog` with
/// respect to `interp`? (Used as the specification in property tests.)
pub fn is_unfounded_set(prog: &GroundProgram, interp: &PartialModel, set: &AtomSet) -> bool {
    for atom in set.iter() {
        for &rid in prog.rules_with_head(afp_datalog::AtomId(atom)) {
            let r = prog.rule(rid);
            let witness_false = r.pos.iter().any(|&q| interp.neg.contains(q.0))
                || r.neg.iter().any(|&q| interp.pos.contains(q.0));
            let witness_unfounded = r.pos.iter().any(|&q| set.contains(q.0));
            if !witness_false && !witness_unfounded {
                return false;
            }
        }
    }
    true
}

/// `U_P` computed by the textbook subset-closure definition — exponential
/// in spirit but implemented as a downward iteration: start from all atoms
/// not obviously founded and repeatedly remove atoms with a usable rule.
/// Quadratic; used only to differential-test [`greatest_unfounded_set`].
pub fn greatest_unfounded_set_naive(prog: &GroundProgram, interp: &PartialModel) -> AtomSet {
    let mut candidate = prog.full_set();
    loop {
        let mut changed = false;
        for atom in candidate.clone().iter() {
            let mut all_witnessed = true;
            for &rid in prog.rules_with_head(afp_datalog::AtomId(atom)) {
                let r = prog.rule(rid);
                let w1 = r.pos.iter().any(|&q| interp.neg.contains(q.0))
                    || r.neg.iter().any(|&q| interp.pos.contains(q.0));
                let w2 = r.pos.iter().any(|&q| candidate.contains(q.0));
                if !w1 && !w2 {
                    all_witnessed = false;
                    break;
                }
            }
            if !all_witnessed {
                candidate.remove(atom);
                changed = true;
            }
        }
        if !changed {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::program::parse_ground;

    fn example_5_1() -> GroundProgram {
        parse_ground(
            "p(a) :- p(c), not p(b).
             p(b) :- not p(a).
             p(c).
             p(d) :- p(e), not p(f).
             p(d) :- p(f), not p(g).
             p(d) :- p(h).
             p(e) :- p(d).
             p(f) :- p(e).
             p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        )
    }

    fn atom(g: &GroundProgram, p: &str, args: &[&str]) -> u32 {
        g.find_atom_by_name(p, args).unwrap().0
    }

    #[test]
    fn example_6_1() {
        // I = {p(c), ¬p(g), ¬p(h)}: U₁ = {p(d), p(e), p(f)} is unfounded,
        // U₂ = {p(a), p(b)} is not.
        let g = example_5_1();
        let u = g.atom_count();
        let interp = PartialModel::new(
            AtomSet::from_iter(u, [atom(&g, "p", &["c"])]),
            AtomSet::from_iter(u, [atom(&g, "p", &["g"]), atom(&g, "p", &["h"])]),
        );
        let u1 = AtomSet::from_iter(
            u,
            [
                atom(&g, "p", &["d"]),
                atom(&g, "p", &["e"]),
                atom(&g, "p", &["f"]),
            ],
        );
        assert!(is_unfounded_set(&g, &interp, &u1));
        let u2 = AtomSet::from_iter(u, [atom(&g, "p", &["a"]), atom(&g, "p", &["b"])]);
        assert!(!is_unfounded_set(&g, &interp, &u2));
        // The GUS contains U₁ (and g, h which have no usable rules).
        let gus = greatest_unfounded_set(&g, &interp);
        assert!(u1.is_subset(&gus));
        assert!(gus.contains(atom(&g, "p", &["g"])));
        assert!(gus.contains(atom(&g, "p", &["h"])));
        assert!(!gus.contains(atom(&g, "p", &["a"])));
        assert!(!gus.contains(atom(&g, "p", &["b"])));
        assert!(!gus.contains(atom(&g, "p", &["c"])));
    }

    #[test]
    fn gus_is_itself_unfounded() {
        let g = example_5_1();
        let interp = PartialModel::empty(g.atom_count());
        let gus = greatest_unfounded_set(&g, &interp);
        assert!(is_unfounded_set(&g, &interp, &gus));
    }

    #[test]
    fn gus_matches_naive_reference() {
        for src in [
            "p :- not q. q :- not p.",
            "a. b :- a. c :- c. d :- c, not a.",
            "x :- y. y :- x. z :- not x.",
            "v :- not v. w :- v.",
        ] {
            let g = parse_ground(src);
            for seed in 0..8u32 {
                // A few ad-hoc consistent interpretations.
                let mut pos = g.empty_set();
                let mut neg = g.empty_set();
                for a in 0..g.atom_count() as u32 {
                    match (seed + a) % 3 {
                        0 => {
                            pos.insert(a);
                        }
                        1 => {
                            neg.insert(a);
                        }
                        _ => {}
                    }
                }
                let interp = PartialModel::new(pos, neg);
                assert_eq!(
                    greatest_unfounded_set(&g, &interp),
                    greatest_unfounded_set_naive(&g, &interp),
                    "mismatch on {src} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // x :- y. y :- x.  Mutual positive support only: unfounded.
        let g = parse_ground("x :- y. y :- x.");
        let gus = greatest_unfounded_set(&g, &PartialModel::empty(g.atom_count()));
        assert_eq!(gus.count(), 2);
    }

    #[test]
    fn facts_are_never_unfounded() {
        let g = parse_ground("a. b :- a.");
        let gus = greatest_unfounded_set(&g, &PartialModel::empty(g.atom_count()));
        assert!(gus.is_empty());
    }

    #[test]
    fn negative_cycles_are_not_unfounded() {
        // p :- not q. q :- not p.  Neither atom is unfounded wrt ∅:
        // their rules have no false literal and no positive subgoal.
        let g = parse_ground("p :- not q. q :- not p.");
        let gus = greatest_unfounded_set(&g, &PartialModel::empty(g.atom_count()));
        assert!(gus.is_empty());
    }

    #[test]
    fn empty_set_is_vacuously_unfounded() {
        let g = parse_ground("p :- not q.");
        let interp = PartialModel::empty(g.atom_count());
        assert!(is_unfounded_set(&g, &interp, &g.empty_set()));
    }
}
