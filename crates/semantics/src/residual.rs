//! Residual programs: simplify a program by its well-founded model.
//!
//! Once the well-founded partial model `W` is known, every rule can be
//! partially evaluated: rules with a body literal false in `W` (or a
//! decided head) are deleted, and body literals true in `W` are removed.
//! What remains — the **residual program** — mentions only the undefined
//! atoms. This is the classic simplification bridge between the
//! well-founded and stable semantics (every stable model is the
//! well-founded positive part plus a stable model of the residual), the
//! practical upshot of the paper's "every stable model contains the
//! well-founded partial model": the polynomial WFS computation does all
//! the deterministic work, leaving the NP search only the genuinely
//! ambiguous core.

use afp_core::interp::{PartialModel, Truth};
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};

/// The residual program of `prog` under `model` (normally its well-founded
/// model). Shares atom names but **not** atom ids: undefined atoms are
/// re-interned densely; use the returned program's `find_atom_by_name`.
pub fn residual_program(prog: &GroundProgram, model: &PartialModel) -> GroundProgram {
    let mut b = GroundProgramBuilder::with_symbols(prog.symbols().clone());
    // Re-intern undefined atoms (dense ids in the residual).
    let undefined = model.undefined();
    let mut new_id = vec![None; prog.atom_count()];
    for a in undefined.iter() {
        let (pred, args) = prog.base().atom(afp_datalog::AtomId(a));
        let new_args: Vec<_> = args.iter().map(|&t| reintern(t, prog, &mut b)).collect();
        new_id[a as usize] = Some(b.base_mut().intern_atom(pred, &new_args));
    }
    'rules: for r in prog.rules() {
        if model.truth(r.head.0) != Truth::Undefined {
            continue;
        }
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for &q in r.pos.iter() {
            match model.truth(q.0) {
                Truth::False => continue 'rules,
                Truth::True => {}
                Truth::Undefined => pos.push(new_id[q.index()].expect("undefined interned")),
            }
        }
        for &q in r.neg.iter() {
            match model.truth(q.0) {
                Truth::True => continue 'rules,
                Truth::False => {}
                Truth::Undefined => neg.push(new_id[q.index()].expect("undefined interned")),
            }
        }
        let head = new_id[r.head.index()].expect("undefined head interned");
        b.rule(head, pos, neg);
    }
    b.finish()
}

/// Lift a stable model of the residual back to the original program: the
/// well-founded positives plus the residual model's atoms (mapped by
/// name).
pub fn lift_residual_model(
    prog: &GroundProgram,
    model: &PartialModel,
    residual: &GroundProgram,
    residual_stable: &AtomSet,
) -> AtomSet {
    let mut out = model.pos.clone();
    for a in residual_stable.iter() {
        let name = residual.atom_name(afp_datalog::AtomId(a));
        // Find by rendered name in the original program.
        let found = (0..prog.atom_count() as u32)
            .find(|&id| prog.atom_name(afp_datalog::AtomId(id)) == name)
            .expect("residual atoms exist in the original");
        out.insert(found);
    }
    out
}

fn reintern(
    t: afp_datalog::ConstId,
    prog: &GroundProgram,
    b: &mut GroundProgramBuilder,
) -> afp_datalog::ConstId {
    match prog.base().term(t).clone() {
        afp_datalog::atoms::GroundTerm::Const(c) => b.base_mut().intern_const(c),
        afp_datalog::atoms::GroundTerm::App(f, args) => {
            let new_args: Vec<_> = args.iter().map(|&a| reintern(a, prog, b)).collect();
            b.base_mut()
                .intern_term(afp_datalog::atoms::GroundTerm::App(
                    f,
                    new_args.into_boxed_slice(),
                ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::brute_force_stable;
    use afp_core::afp::alternating_fixpoint;
    use afp_datalog::program::parse_ground;

    #[test]
    fn residual_keeps_only_the_undefined_core() {
        let g = parse_ground("base. p :- not q. q :- not p. r :- base, p. dead :- not base.");
        let wfs = alternating_fixpoint(&g);
        let res = residual_program(&g, &wfs.model);
        // base true, dead false — gone. p, q, r remain.
        assert_eq!(res.atom_count(), 3);
        // r :- base, p simplifies to r :- p.
        let r_atom = res.find_atom_by_name("r", &[]).unwrap();
        let rid = res.rules_with_head(r_atom)[0];
        assert_eq!(res.rule(rid).pos.len(), 1);
        assert!(res.rule(rid).neg.is_empty());
    }

    #[test]
    fn residual_of_total_model_is_empty() {
        let g = parse_ground("a. b :- a. c :- not b.");
        let wfs = alternating_fixpoint(&g);
        assert!(wfs.is_total);
        let res = residual_program(&g, &wfs.model);
        assert_eq!(res.atom_count(), 0);
        assert_eq!(res.rule_count(), 0);
    }

    #[test]
    fn stable_models_split_through_the_residual() {
        // stable(P) = { WFS⁺ ∪ S : S ∈ stable(residual(P)) }
        for src in [
            "base. p :- not q. q :- not p. r :- base, p. dead :- not base.",
            "a :- not b. b :- not a. c :- a, not d. d :- b. e.",
            "v :- not v. w. x :- w, not y. y :- not x.",
        ] {
            let g = parse_ground(src);
            let wfs = alternating_fixpoint(&g);
            let res = residual_program(&g, &wfs.model);
            let direct = brute_force_stable(&g);
            let via_residual: Vec<AtomSet> = brute_force_stable(&res)
                .iter()
                .map(|s| lift_residual_model(&g, &wfs.model, &res, s))
                .collect();
            let mut a: Vec<Vec<u32>> = direct.iter().map(|m| m.iter().collect()).collect();
            let mut b: Vec<Vec<u32>> = via_residual.iter().map(|m| m.iter().collect()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "splitting failed on {src}");
        }
    }

    #[test]
    fn residual_wfs_is_everywhere_undefined() {
        // The WFS of the residual leaves everything undefined — the
        // residual is the "hard core".
        let g = parse_ground("p :- not q. q :- not p. r :- p. r :- q. s :- not r.");
        let wfs = alternating_fixpoint(&g);
        let res = residual_program(&g, &wfs.model);
        let res_wfs = alternating_fixpoint(&res);
        assert_eq!(res_wfs.model.defined_count(), 0);
    }
}
