//! Inflationary fixpoint semantics (IFP; Section 2.2) and the
//! non-inflationary naive extension it repairs.
//!
//! IFP draws positive conclusions in rounds: a negative literal evaluates
//! to true if the positive fact has not been concluded in an *earlier*
//! round, and once concluded a fact is held forever — the operator
//!
//! ```text
//! T_P(I⁺) = I⁺ ∪ C_P(I⁺, conj(I⁺))
//! ```
//!
//! is *inflationary* but not monotone; "the timing of rule applications is
//! extremely critical" (Section 2.2). Example 2.2 of the paper shows the
//! consequence: the obvious program for the complement of transitive
//! closure puts **every** pair into `np`, because `¬p(X,Y)` holds for all
//! pairs in round one. The experiment harness reproduces that failure next
//! to the well-founded answer.
//!
//! The plain (non-inflationary) extension `T_P(I⁺) = C_P(I⁺, conj(I⁺))`
//! studied by Kolaitis–Papadimitriou is not even inflationary and can
//! oscillate; [`naive_iteration`] exposes it with cycle detection.

use afp_core::ops;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;

/// Result of the inflationary computation.
#[derive(Debug, Clone)]
pub struct InflationaryResult {
    /// The inflationary fixpoint (a set of true atoms; everything else is
    /// taken as false — IFP has no notion of "undefined").
    pub model: AtomSet,
    /// Rounds until the fixpoint.
    pub rounds: usize,
}

/// Compute the inflationary fixpoint.
pub fn inflationary_fixpoint(prog: &GroundProgram) -> InflationaryResult {
    let mut current = prog.empty_set();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let neg = current.complement();
        let mut next = ops::c_p(prog, &current, &neg);
        next.union_with(&current);
        if next == current {
            return InflationaryResult {
                model: current,
                rounds,
            };
        }
        current = next;
    }
}

/// Outcome of the non-inflationary naive iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveOutcome {
    /// Reached a fixpoint.
    Fixpoint(AtomSet),
    /// Entered a cycle of the given period (> 1) — the operator oscillates
    /// and defines no model.
    Oscillates {
        /// Length of the limit cycle.
        period: usize,
        /// A state inside the cycle.
        witness: AtomSet,
    },
}

/// Iterate the non-inflationary `T_P(I⁺) = C_P(I⁺, conj(I⁺))` from the
/// empty set, detecting limit cycles (Floyd's tortoise-and-hare is
/// unnecessary: the state space is finite and we keep the full history
/// hash-free by comparing against the previous two iterates, which catches
/// the ubiquitous period-2 oscillation; longer cycles fall back to a
/// bounded history scan).
pub fn naive_iteration(prog: &GroundProgram, max_rounds: usize) -> NaiveOutcome {
    let step = |i: &AtomSet| -> AtomSet { ops::c_p(prog, i, &i.complement()) };
    let mut history: Vec<AtomSet> = vec![prog.empty_set()];
    for _ in 0..max_rounds {
        let next = step(history.last().expect("nonempty"));
        if let Some(pos) = history.iter().position(|h| *h == next) {
            let period = history.len() - pos;
            return if period == 0 || *history.last().unwrap() == next {
                NaiveOutcome::Fixpoint(next)
            } else {
                NaiveOutcome::Oscillates {
                    period,
                    witness: next,
                }
            };
        }
        history.push(next);
    }
    NaiveOutcome::Oscillates {
        period: 0,
        witness: history.pop().expect("nonempty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::program::parse_ground;

    #[test]
    fn horn_program_matches_least_model() {
        let g = parse_ground("a. b :- a. c :- b.");
        let r = inflationary_fixpoint(&g);
        assert_eq!(g.set_to_names(&r.model), vec!["a", "b", "c"]);
    }

    #[test]
    fn example_2_2_np_degenerates() {
        // Ground slice of Example 2.2 on edge e(a,b): in round one,
        // ¬p(a,b) holds (nothing concluded yet), so np(a,b) is concluded —
        // and kept forever, even though p(a,b) follows in round two.
        let g = parse_ground(
            "e(a,b).
             p(a,b) :- e(a,b).
             np(a,b) :- not p(a,b).",
        );
        let r = inflationary_fixpoint(&g);
        let np = g.find_atom_by_name("np", &["a", "b"]).unwrap();
        let p = g.find_atom_by_name("p", &["a", "b"]).unwrap();
        assert!(r.model.contains(np.0), "IFP wrongly concludes np(a,b)");
        assert!(r.model.contains(p.0));
        // The WFS gets it right.
        let wfs = afp_core::afp::alternating_fixpoint(&g);
        assert!(wfs.model.neg.contains(np.0));
    }

    #[test]
    fn inflationary_is_inflationary() {
        let g = parse_ground("p :- not q. q :- not p. r :- p, q.");
        let mut current = g.empty_set();
        for _ in 0..4 {
            let neg = current.complement();
            let mut next = ops::c_p(&g, &current, &neg);
            next.union_with(&current);
            assert!(current.is_subset(&next));
            current = next;
        }
    }

    #[test]
    fn naive_iteration_oscillates_on_self_negation() {
        // v :- not v.  ∅ → {v} → ∅ → … : period 2.
        let g = parse_ground("v :- not v.");
        match naive_iteration(&g, 100) {
            NaiveOutcome::Oscillates { period, .. } => assert_eq!(period, 2),
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn naive_iteration_fixpoint_on_horn() {
        let g = parse_ground("a. b :- a.");
        match naive_iteration(&g, 100) {
            NaiveOutcome::Fixpoint(m) => {
                assert_eq!(g.set_to_names(&m), vec!["a", "b"])
            }
            other => panic!("expected fixpoint, got {other:?}"),
        }
    }

    #[test]
    fn rounds_reported() {
        let g = parse_ground("p0. p1 :- p0. p2 :- p1. p3 :- p2.");
        let r = inflationary_fixpoint(&g);
        assert!(r.rounds >= 2);
        assert_eq!(r.model.count(), 4);
    }
}
