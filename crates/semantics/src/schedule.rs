//! Task-DAG schedulers for component-wise evaluation.
//!
//! The condensation decomposes a well-founded solve into one task per
//! strongly connected component, with an edge `B → A` whenever a rule of
//! `A` reads an atom of `B`: independent components are embarrassingly
//! parallel, and [`afp_datalog::depgraph::TaskGraph`] is exactly that DAG
//! restricted to the components a solve actually evaluates. A
//! [`Scheduler`] executes such a graph, calling a task closure once per
//! component and never before every predecessor has returned.
//!
//! Two production schedulers:
//!
//! * [`Sequential`] — tasks in ascending component-id order on the
//!   calling thread. This is exactly the order the pre-refactor solver
//!   used, and the default (a 1-core runner gains nothing from the pool
//!   and skips its synchronization entirely).
//! * [`Wavefront`] — an indegree-driven ready queue over a **persistent**
//!   pool of `std::thread` workers (spawned once, parked between runs,
//!   shared by every solve of every session of the engine that built
//!   them) with per-worker deques and work stealing. The calling thread
//!   participates as worker 0, so a pool of `threads` workers spawns
//!   `threads - 1` OS threads.
//!
//! **Determinism does not depend on the schedule.** Each component's
//! verdicts are a pure function of the settled verdicts of strictly lower
//! components (the well-founded model of the component's subprogram
//! relative to its boundary is unique), tasks write disjoint output
//! slots, and the final model is committed by an ordered scan — so any
//! schedule that respects the dependency edges produces bit-identical
//! models. The [`Wavefront::chaos`] seam exploits exactly this to *test*
//! it: a seeded RNG permutes every ready-queue pop, forcing adversarial
//! completion orders that must still reproduce the sequential model.
//!
//! No external crates: the pool is hand-rolled on `std::sync` primitives
//! (the workspace is offline; rayon/crossbeam are not available), with
//! one narrow `unsafe` block to hand a borrowed run state to the
//! persistent workers — made sound by the dispatch protocol, which
//! retires the job pointer and waits for every participating worker to
//! leave before the state is dropped.

use afp_datalog::depgraph::TaskGraph;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Counters from one [`Scheduler::run`], surfaced through
/// `SessionStats` and the `stats` wire frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedRun {
    /// Tasks executed.
    pub tasks: usize,
    /// Critical-path length of the scheduled DAG in dependency levels —
    /// the number of wavefronts an idealized schedule needs, identical
    /// for every scheduler and thread count.
    pub wavefronts: usize,
    /// Maximum number of simultaneously ready (released, not yet
    /// started) tasks observed — the parallelism the DAG actually
    /// offered this run.
    pub max_ready_width: usize,
    /// Tasks executed by a worker other than the one that released
    /// them. Always `0` on the sequential path.
    pub stolen_tasks: u64,
    /// True when the tasks ran on the multi-worker path (as opposed to
    /// the sequential scheduler or the pool's small-graph fallback).
    pub parallel: bool,
    /// Worker time spent evaluating components, summed over workers
    /// (wall minus steal minus sleep; the whole wall on the sequential
    /// path). Can exceed the run's wall clock on multi-worker runs.
    pub busy_ns: u64,
    /// Worker time spent scanning sibling deques for work. `0` on the
    /// sequential path, where the fast own-deque pop is never timed.
    pub steal_ns: u64,
    /// Worker time spent parked on the idle condvar waiting for tasks
    /// to become ready. `0` on the sequential path.
    pub sleep_ns: u64,
}

/// Executes a [`TaskGraph`]. Implementations must call `task(comp, w)`
/// exactly once per scheduled component `comp`, with `w < workers()`,
/// and never before every predecessor task has returned; `w` indexes
/// per-worker scratch and is held exclusively for the duration of the
/// call.
pub trait Scheduler: fmt::Debug + Send + Sync {
    /// Worker slots `run` may use (callers size scratch arrays by this).
    fn workers(&self) -> usize;

    /// Execute every task in `graph`.
    fn run(&self, graph: &TaskGraph, task: &(dyn Fn(u32, usize) + Sync)) -> SchedRun;
}

/// The sequential scheduler: tasks in ascending component-id order on
/// the calling thread — bit-identical to the pre-scheduler evaluation
/// loop, with zero synchronization. The engine's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sequential;

impl Scheduler for Sequential {
    fn workers(&self) -> usize {
        1
    }

    fn run(&self, graph: &TaskGraph, task: &(dyn Fn(u32, usize) + Sync)) -> SchedRun {
        run_in_order(graph, task)
    }
}

/// Run tasks in ascending index order (a valid topological order — see
/// [`TaskGraph`]), simulating the ready set to report the width the DAG
/// offered. Shared by [`Sequential`] and the pool's small-graph fallback.
fn run_in_order(graph: &TaskGraph, task: &(dyn Fn(u32, usize) + Sync)) -> SchedRun {
    let started = Instant::now();
    let t = graph.len();
    let mut indeg: Vec<u32> = (0..t).map(|ti| graph.indegree(ti)).collect();
    let mut ready = indeg.iter().filter(|&&d| d == 0).count();
    let mut max_ready = ready;
    for ti in 0..t {
        debug_assert_eq!(indeg[ti], 0, "index order is topological");
        ready -= 1;
        task(graph.component(ti), 0);
        for &d in graph.dependents(ti) {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                ready += 1;
            }
        }
        max_ready = max_ready.max(ready);
    }
    SchedRun {
        tasks: t,
        wavefronts: graph.depth(),
        max_ready_width: max_ready,
        stolen_tasks: 0,
        parallel: false,
        busy_ns: started.elapsed().as_nanos() as u64,
        steal_ns: 0,
        sleep_ns: 0,
    }
}

/// Tuning knobs for a [`Wavefront`] pool.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontOptions {
    /// Graphs with fewer tasks than this run inline on the calling
    /// thread ([`run_in_order`]): waking the pool costs more than a
    /// handful of singleton components. Set to `0` to force the
    /// multi-worker path (the differential tests do).
    pub min_par_tasks: usize,
    /// Adversarial-order fault injection: when set, every ready-queue
    /// pop picks a seeded-random element instead of the newest, and
    /// released tasks are never kept in hand — completion orders are
    /// deliberately scrambled while still respecting dependency edges.
    /// Results must be (and are, see the `par_solve` suite)
    /// bit-identical anyway.
    pub chaos: Option<u64>,
}

impl Default for WavefrontOptions {
    fn default() -> Self {
        WavefrontOptions {
            min_par_tasks: 32,
            chaos: None,
        }
    }
}

/// The parallel scheduler: an indegree-driven ready queue over a
/// persistent worker pool with per-worker deques and work stealing.
/// Construction spawns `threads - 1` parked OS threads; [`Drop`] shuts
/// them down. Clone the containing `Arc` to share one pool across
/// engines and sessions.
pub struct Wavefront {
    threads: usize,
    options: WavefrontOptions,
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for Wavefront {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wavefront")
            .field("threads", &self.threads)
            .field("min_par_tasks", &self.options.min_par_tasks)
            .field("chaos", &self.options.chaos)
            .finish()
    }
}

impl Wavefront {
    /// A pool of `threads` workers (min 1) with default options.
    pub fn new(threads: usize) -> Wavefront {
        Wavefront::with_options(threads, WavefrontOptions::default())
    }

    /// A pool of `threads` workers (min 1) with explicit options.
    pub fn with_options(threads: usize, options: WavefrontOptions) -> Wavefront {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            ctl: Mutex::new(PoolCtl {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|ix| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("afp-wavefront-{ix}"))
                    .spawn(move || worker_main(&shared, ix))
                    .expect("spawn wavefront worker")
            })
            .collect();
        Wavefront {
            threads,
            options,
            shared,
            handles,
        }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for Wavefront {
    fn drop(&mut self) {
        {
            let mut ctl = self.shared.ctl.lock().unwrap();
            ctl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Scheduler for Wavefront {
    fn workers(&self) -> usize {
        self.threads
    }

    fn run(&self, graph: &TaskGraph, task: &(dyn Fn(u32, usize) + Sync)) -> SchedRun {
        let t = graph.len();
        if t == 0 {
            return SchedRun::default();
        }
        // Small graphs and pure chains gain nothing from the pool; run
        // them inline rather than paying the wakeup latency.
        if self.threads == 1 || (t < self.options.min_par_tasks && self.options.chaos.is_none()) {
            return run_in_order(graph, task);
        }

        let state = RunState {
            graph,
            task,
            chaos: self.options.chaos,
            indeg: (0..t)
                .map(|ti| AtomicU32::new(graph.indegree(ti)))
                .collect(),
            queues: (0..self.threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            remaining: AtomicUsize::new(t),
            ready_now: AtomicUsize::new(0),
            max_ready: AtomicUsize::new(0),
            stolen: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            steal_ns: AtomicU64::new(0),
            sleep_ns: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
        };
        // Seed worker 0's deque with every source task.
        {
            let mut q0 = state.queues[0].lock().unwrap();
            for ti in 0..t {
                if graph.indegree(ti) == 0 {
                    q0.push_back(ti as u32);
                }
            }
            let seeds = q0.len();
            state.queued.store(seeds, SeqCst);
            state.ready_now.store(seeds, SeqCst);
            state.max_ready.store(seeds, SeqCst);
        }

        // Hand the borrowed run state to the persistent workers. Sound
        // because: (a) workers obtain the pointer only through `ctl.job`,
        // which is retired below before this frame returns; (b) every
        // worker that copied it registered in `ctl.active` under the same
        // lock, and we block until `active == 0` — so no worker can
        // observe `state` after it is dropped.
        let job = Job {
            run: run_worker_erased,
            data: &state as *const RunState as *const (),
        };
        {
            let mut ctl = self.shared.ctl.lock().unwrap();
            ctl.job = Some(job);
            ctl.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        run_worker(&state, 0);
        {
            let mut ctl = self.shared.ctl.lock().unwrap();
            ctl.job = None;
            while ctl.active != 0 {
                ctl = self.shared.done_cv.wait(ctl).unwrap();
            }
        }

        SchedRun {
            tasks: t,
            wavefronts: graph.depth(),
            max_ready_width: state.max_ready.load(SeqCst),
            stolen_tasks: state.stolen.load(SeqCst),
            parallel: true,
            busy_ns: state.busy_ns.load(SeqCst),
            steal_ns: state.steal_ns.load(SeqCst),
            sleep_ns: state.sleep_ns.load(SeqCst),
        }
    }
}

/// One dispatched job: a type-erased entry point over a borrowed
/// [`RunState`]. The pointer is only dereferenced by workers registered
/// in `PoolCtl::active`, and the dispatcher waits for them all before
/// releasing the state.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize),
    data: *const (),
}

// The pointee is a `RunState`, which is `Sync` (atomics, mutexes, and
// `Sync` borrows only); the dispatch protocol bounds its lifetime.
unsafe impl Send for Job {}

struct PoolShared {
    ctl: Mutex<PoolCtl>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The dispatcher parks here until every worker left the job.
    done_cv: Condvar,
}

struct PoolCtl {
    epoch: u64,
    job: Option<Job>,
    /// Workers currently inside a job body.
    active: usize,
    shutdown: bool,
}

fn worker_main(shared: &PoolShared, ix: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut ctl = shared.ctl.lock().unwrap();
            loop {
                if ctl.shutdown {
                    return;
                }
                if ctl.epoch != seen {
                    seen = ctl.epoch;
                    if let Some(job) = ctl.job {
                        ctl.active += 1;
                        break job;
                    }
                    // The job was already retired; wait for the next one.
                }
                ctl = shared.work_cv.wait(ctl).unwrap();
            }
        };
        // SAFETY: `job.data` points at the dispatcher's `RunState`,
        // which outlives this call — the dispatcher cannot return until
        // `active` (incremented above, under the lock) drops to zero.
        unsafe { (job.run)(job.data, ix) };
        let mut ctl = shared.ctl.lock().unwrap();
        ctl.active -= 1;
        if ctl.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Everything one wavefront run shares between workers.
struct RunState<'a> {
    graph: &'a TaskGraph,
    task: &'a (dyn Fn(u32, usize) + Sync),
    chaos: Option<u64>,
    /// Remaining unsettled predecessors per task.
    indeg: Vec<AtomicU32>,
    /// Per-worker deques of ready task indices.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Tasks currently sitting in deques (not in-hand, not running).
    queued: AtomicUsize,
    /// Tasks not yet finished; `0` terminates the run.
    remaining: AtomicUsize,
    /// Ready-but-unstarted tasks, for the width high-water mark.
    ready_now: AtomicUsize,
    max_ready: AtomicUsize,
    stolen: AtomicU64,
    /// Per-worker time accounting, summed over workers at worker exit:
    /// busy = wall − steal − sleep. Steal scans and park episodes are
    /// rare, so only they pay clock reads; the per-task fast path never
    /// does.
    busy_ns: AtomicU64,
    steal_ns: AtomicU64,
    sleep_ns: AtomicU64,
    /// Workers parked on `idle_cv`.
    sleepers: AtomicUsize,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

unsafe fn run_worker_erased(data: *const (), worker: usize) {
    // SAFETY: see the dispatch protocol in `Wavefront::run` — `data` is
    // a live `RunState` for the whole duration of this call.
    let state = unsafe { &*(data as *const RunState) };
    run_worker(state, worker);
}

fn run_worker(state: &RunState, w: usize) {
    let wall = Instant::now();
    let mut steal_ns = 0u64;
    let mut sleep_ns = 0u64;
    let mut rng = state
        .chaos
        .map(|seed| seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut in_hand: Option<u32> = None;
    loop {
        let ti = match in_hand.take() {
            Some(ti) => Some(ti),
            None => pop_task(state, w, &mut rng, &mut steal_ns),
        };
        let Some(ti) = ti else {
            if state.remaining.load(SeqCst) == 0 {
                break;
            }
            // Nothing ready anywhere, but tasks are still running on
            // other workers: park until a push or termination.
            let parked = Instant::now();
            state.sleepers.fetch_add(1, SeqCst);
            {
                let mut guard = state.idle.lock().unwrap();
                while state.remaining.load(SeqCst) != 0 && state.queued.load(SeqCst) == 0 {
                    guard = state.idle_cv.wait(guard).unwrap();
                }
                drop(guard);
            }
            state.sleepers.fetch_sub(1, SeqCst);
            sleep_ns += parked.elapsed().as_nanos() as u64;
            continue;
        };

        state.ready_now.fetch_sub(1, SeqCst);
        (state.task)(state.graph.component(ti as usize), w);

        // Release dependents. The first released task is kept in hand
        // (the common chain case pays no queue traffic); the rest go to
        // this worker's deque, visible to thieves. Chaos mode queues
        // everything so the seeded pops scramble the order fully.
        let mut released = 0usize;
        for &d in state.graph.dependents(ti as usize) {
            if state.indeg[d as usize].fetch_sub(1, SeqCst) == 1 {
                released += 1;
                if in_hand.is_none() && rng.is_none() {
                    in_hand = Some(d);
                } else {
                    let mut q = state.queues[w].lock().unwrap();
                    q.push_back(d);
                    drop(q);
                    state.queued.fetch_add(1, SeqCst);
                    if state.sleepers.load(SeqCst) > 0 {
                        let _guard = state.idle.lock().unwrap();
                        state.idle_cv.notify_all();
                    }
                }
            }
        }
        if released > 0 {
            let now = state.ready_now.fetch_add(released, SeqCst) + released;
            state.max_ready.fetch_max(now, SeqCst);
        }
        if state.remaining.fetch_sub(1, SeqCst) == 1 {
            // Last task: wake every parked worker so the run can end.
            let _guard = state.idle.lock().unwrap();
            state.idle_cv.notify_all();
        }
    }
    // Settle this worker's time split: everything that was neither a
    // steal scan nor a park is attributed to task evaluation.
    let wall_ns = wall.elapsed().as_nanos() as u64;
    state.steal_ns.fetch_add(steal_ns, SeqCst);
    state.sleep_ns.fetch_add(sleep_ns, SeqCst);
    state
        .busy_ns
        .fetch_add(wall_ns.saturating_sub(steal_ns + sleep_ns), SeqCst);
}

/// Pop a ready task: own deque first (newest — depth-first locality),
/// then steal the oldest from a sibling. Chaos mode picks seeded-random
/// elements instead. The own-deque fast path is untimed; a scan past it
/// charges its wall time to `steal_ns`.
fn pop_task(state: &RunState, w: usize, rng: &mut Option<u64>, steal_ns: &mut u64) -> Option<u32> {
    {
        let mut q = state.queues[w].lock().unwrap();
        let got = match rng {
            Some(seed) => {
                if q.is_empty() {
                    None
                } else {
                    let ix = (xorshift(seed) % q.len() as u64) as usize;
                    q.swap_remove_back(ix)
                }
            }
            None => q.pop_back(),
        };
        drop(q);
        if let Some(ti) = got {
            state.queued.fetch_sub(1, SeqCst);
            return Some(ti);
        }
    }
    let scan = Instant::now();
    let nq = state.queues.len();
    let mut found = None;
    for i in 1..nq {
        let victim = (w + i) % nq;
        let mut q = state.queues[victim].lock().unwrap();
        let got = match rng {
            Some(seed) => {
                if q.is_empty() {
                    None
                } else {
                    let ix = (xorshift(seed) % q.len() as u64) as usize;
                    q.swap_remove_back(ix)
                }
            }
            None => q.pop_front(),
        };
        drop(q);
        if let Some(ti) = got {
            state.queued.fetch_sub(1, SeqCst);
            state.stolen.fetch_add(1, SeqCst);
            found = Some(ti);
            break;
        }
    }
    *steal_ns += scan.elapsed().as_nanos() as u64;
    found
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_datalog::depgraph::Condensation;
    use afp_datalog::program::parse_ground;

    /// Every scheduler must run each task exactly once, never before its
    /// predecessors, whatever the interleaving.
    fn check_schedule(sched: &dyn Scheduler, src: &str) -> SchedRun {
        let g = parse_ground(src);
        let cond = Condensation::of(&g);
        let all: Vec<u32> = (0..cond.len() as u32).collect();
        let graph = cond.task_graph(&g, &all);
        let runs: Vec<AtomicU32> = (0..cond.len()).map(|_| AtomicU32::new(0)).collect();
        let done: Vec<AtomicU32> = (0..cond.len()).map(|_| AtomicU32::new(0)).collect();
        let run = sched.run(&graph, &|comp, _w| {
            runs[comp as usize].fetch_add(1, SeqCst);
            // Every settled component this one reads must already be done.
            for &rid in cond.rules(comp as usize) {
                let r = g.rule(rid);
                for &q in r.pos.iter().chain(r.neg.iter()) {
                    let pc = cond.component_of(q.0);
                    if pc != comp {
                        assert_eq!(done[pc as usize].load(SeqCst), 1, "pred settled first");
                    }
                }
            }
            done[comp as usize].store(1, SeqCst);
        });
        for r in &runs {
            assert_eq!(r.load(SeqCst), 1, "each task runs exactly once");
        }
        assert_eq!(run.tasks, cond.len());
        run
    }

    const CHAIN: &str = "a. b :- a. c :- b. d :- c, not e. e :- not d.";
    const WIDE: &str = "a. b1 :- a. b2 :- a. b3 :- a. b4 :- a.
                        c1 :- b1, not b2. c2 :- b3. z :- c1, c2, b4.";

    #[test]
    fn sequential_respects_dependencies() {
        let run = check_schedule(&Sequential, CHAIN);
        assert!(!run.parallel);
        assert_eq!(run.stolen_tasks, 0);
        assert!(run.wavefronts >= 4);
        let run = check_schedule(&Sequential, WIDE);
        assert!(run.max_ready_width >= 4, "the fan-out is visible");
    }

    #[test]
    fn wavefront_pool_respects_dependencies() {
        for threads in [1, 2, 4] {
            let sched = Wavefront::with_options(
                threads,
                WavefrontOptions {
                    min_par_tasks: 0,
                    chaos: None,
                },
            );
            let run = check_schedule(&sched, WIDE);
            assert_eq!(run.parallel, threads > 1);
            check_schedule(&sched, CHAIN);
        }
    }

    #[test]
    fn chaos_orders_respect_dependencies() {
        for seed in 0..8u64 {
            let sched = Wavefront::with_options(
                4,
                WavefrontOptions {
                    min_par_tasks: 0,
                    chaos: Some(seed),
                },
            );
            check_schedule(&sched, WIDE);
            check_schedule(&sched, CHAIN);
        }
    }

    #[test]
    fn small_graphs_fall_back_inline() {
        let sched = Wavefront::new(4); // default min_par_tasks
        let run = check_schedule(&sched, CHAIN);
        assert!(!run.parallel, "tiny graphs skip the pool");
    }

    #[test]
    fn pool_is_reusable_and_shuts_down() {
        let sched = Wavefront::with_options(
            3,
            WavefrontOptions {
                min_par_tasks: 0,
                chaos: None,
            },
        );
        for _ in 0..50 {
            check_schedule(&sched, WIDE);
        }
        drop(sched); // join must not hang
    }

    #[test]
    fn time_accounting_is_reported() {
        let run = check_schedule(&Sequential, WIDE);
        assert!(run.busy_ns > 0, "sequential busy covers the whole wall");
        assert_eq!(run.steal_ns, 0);
        assert_eq!(run.sleep_ns, 0);
        let sched = Wavefront::with_options(
            2,
            WavefrontOptions {
                min_par_tasks: 0,
                chaos: None,
            },
        );
        let run = check_schedule(&sched, WIDE);
        assert!(run.parallel);
        assert!(run.busy_ns > 0, "workers report evaluation time");
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = parse_ground("");
        let cond = Condensation::of(&g);
        let graph = cond.task_graph(&g, &[]);
        let run = Wavefront::new(2).run(&graph, &|_, _| panic!("no tasks"));
        assert_eq!(run, SchedRun::default());
    }
}
