//! Example 2.2 workload: transitive closure and its complement. Measures
//! the full pipeline (ground + solve) for the well-founded semantics and
//! the inflationary fixpoint on chain, cycle, and random graphs.

use afp_bench::gen::{self, Graph};
use afp_core::afp::alternating_fixpoint;
use afp_semantics::inflationary::inflationary_fixpoint;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tc_ntc(c: &mut Criterion) {
    let shapes: Vec<(&str, Graph)> = vec![
        ("path", Graph::path(40)),
        ("cycle", Graph::cycle(40)),
        ("random", Graph::random(40, 0.05, 5)),
    ];
    for (name, g) in shapes {
        let ast = gen::tc_ntc_ast(&g);
        let ground = afp_datalog::ground(&ast).expect("grounds");
        let mut group = c.benchmark_group(format!("tc_ntc/{name}"));
        group.bench_function("ground_only", |b| {
            b.iter(|| afp_datalog::ground(&ast).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("wfs", 40), &ground, |b, p| {
            b.iter(|| alternating_fixpoint(p))
        });
        group.bench_with_input(BenchmarkId::new("inflationary", 40), &ground, |b, p| {
            b.iter(|| inflationary_fixpoint(p))
        });
        group.finish();
    }
}

criterion_group!(benches, tc_ntc);
criterion_main!(benches);
