//! Acceptance bench for the durability tier (`afp::journal`), in two
//! parts:
//!
//! * `write_path_*` — one fact-toggle write cycle per iteration through
//!   a journaled service, parameterized by fsync policy: `none` is the
//!   unjournaled PR 4 baseline (the 181 µs `service_inproc` figure in
//!   BENCH_net.json), `never` adds the append without any syncing
//!   (framing + CRC + one `write(2)` per record), `every8` amortizes
//!   one `fdatasync` over 8 records, and `always` pays the sync on the
//!   publish path of every cycle. The deltas between the four are the
//!   journal's bookkeeping cost and the raw price of durability.
//!
//! * `recovery_replay` — `Service::recover` over a journal of 64
//!   warm-replayable deltas, measuring what a crash restart actually
//!   costs when the checkpoint interval lets the tail grow that long.
//!
//! Results land in BENCH_journal.json with the runner-core annotation;
//! on the 1-core CI runner the fsync numbers measure the filesystem of
//! the runner's tmpdir, not a production disk — record, don't compare
//! across machines.

use afp::{Engine, FsyncPolicy, JournalOptions, Service, ServiceOptions};
use afp_bench::gen::{node_name, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

fn win_move_src(g: &Graph) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    src
}

fn bench_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("afp-bench-journal-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn write_path(c: &mut Criterion) {
    let g = Graph::random_regular_out(256, 3, 42);
    let src = win_move_src(&g);
    let toggle_on = format!("move({}, sink).", node_name(0));
    let mut group = c.benchmark_group("journal/write_path_win_move_256");
    group.sample_size(10);

    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("none", None),
        ("never", Some(FsyncPolicy::Never)),
        ("every8", Some(FsyncPolicy::EveryN(8))),
        ("always", Some(FsyncPolicy::Always)),
    ];
    for (label, policy) in policies {
        group.bench_function(BenchmarkId::new("fsync", label), |b| {
            let session = Engine::default().load(&src).unwrap();
            let service = match policy {
                None => Service::new(session).unwrap(),
                Some(fsync) => {
                    let dir = bench_dir(label);
                    Service::with_journal(
                        session,
                        ServiceOptions::default(),
                        &dir,
                        JournalOptions {
                            fsync,
                            ..JournalOptions::default()
                        },
                    )
                    .unwrap()
                }
            };
            let mut present = false;
            b.iter(|| {
                present = !present;
                let v = if present {
                    service.assert_facts(&toggle_on).unwrap()
                } else {
                    service.retract_facts(&toggle_on).unwrap()
                };
                std::hint::black_box(v)
            });
            if let Some(stats) = service.journal_stats() {
                eprintln!(
                    "journal fsync={label}: {} records, {} bytes, {} syncs \
                     (for BENCH_journal.json)",
                    stats.records_appended, stats.bytes_appended, stats.syncs
                );
            }
            drop(service);
            let _ = std::fs::remove_dir_all(bench_dir(label));
        });
    }
    group.finish();
}

const REPLAY_DEPTH: u64 = 64;

fn recovery_replay(c: &mut Criterion) {
    let g = Graph::random_regular_out(256, 3, 42);
    let src = win_move_src(&g);
    let engine = Engine::default();

    // Build one journal with a 64-record tail past the initial
    // checkpoint, closed cleanly; each iteration recovers from it.
    let dir = bench_dir("replay");
    let service = Service::with_journal(
        engine.load(&src).unwrap(),
        ServiceOptions {
            changelog_capacity: REPLAY_DEPTH as usize + 1,
            ..ServiceOptions::default()
        },
        &dir,
        JournalOptions {
            fsync: FsyncPolicy::Never,
            ..JournalOptions::default()
        },
    )
    .unwrap();
    for i in 0..REPLAY_DEPTH {
        service
            .assert_facts(&format!("move({}, x{i}).", node_name((i % 256) as u32)))
            .unwrap();
    }
    drop(service);

    let mut group = c.benchmark_group("journal/recovery");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("replay_records", REPLAY_DEPTH), |b| {
        b.iter(|| {
            let recovered = Service::recover(
                &engine,
                &dir,
                ServiceOptions {
                    changelog_capacity: REPLAY_DEPTH as usize + 1,
                    ..ServiceOptions::default()
                },
                JournalOptions {
                    fsync: FsyncPolicy::Never,
                    ..JournalOptions::default()
                },
            )
            .unwrap();
            assert_eq!(recovered.version(), REPLAY_DEPTH);
            std::hint::black_box(recovered)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, write_path, recovery_replay);
criterion_main!(benches);
