//! Ablation: the naive per-iteration recomputation of the paper versus the
//! warm-started evaluation of the increasing underestimate chain
//! (`Strategy::IncrementalUnder`, see DESIGN.md). Path-graph win–move
//! instances maximize alternation depth, where the incremental strategy's
//! advantage should be largest; shallow random instances bound the
//! overhead in the uninteresting case.

use afp_bench::gen::{self, Graph};
use afp_core::afp::{alternating_fixpoint_with, AfpOptions, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_strategy(
    c: &mut Criterion,
    group_name: &str,
    prog: &afp_datalog::GroundProgram,
    param: usize,
) {
    let mut group = c.benchmark_group(group_name);
    for (label, strategy) in [
        ("naive", Strategy::Naive),
        ("incremental_under", Strategy::IncrementalUnder),
    ] {
        group.bench_with_input(BenchmarkId::new(label, param), prog, |b, p| {
            b.iter(|| {
                alternating_fixpoint_with(
                    p,
                    &AfpOptions {
                        strategy,
                        record_trace: false,
                    },
                )
            })
        });
    }
    group.finish();
}

fn afp_ablation(c: &mut Criterion) {
    for n in [256usize, 1024] {
        let prog = gen::win_move_ground(&Graph::path(n));
        bench_strategy(c, "afp_ablation/deep_path", &prog, n);
    }
    let g = Graph::random_regular_out(2000, 3, 31);
    let prog = gen::win_move_ground(&g);
    bench_strategy(c, "afp_ablation/shallow_random", &prog, 2000);
}

criterion_group!(benches, afp_ablation);
criterion_main!(benches);
