//! Grounder benchmarks: relevance-based instantiation over the positive
//! envelope (see `afp-datalog::ground`). Measures envelope computation
//! and full grounding on tc/ntc and win–move workloads.

use afp_bench::gen::{self, Graph};
use afp_datalog::ground::{positive_envelope, GroundOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding/tc_ntc");
    for n in [20usize, 40] {
        let ast = gen::tc_ntc_ast(&Graph::random(n, 0.08, 3));
        group.bench_with_input(BenchmarkId::new("full", n), &ast, |b, ast| {
            b.iter(|| afp_datalog::ground(ast).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("envelope_only", n), &ast, |b, ast| {
            b.iter(|| positive_envelope(ast, &GroundOptions::default()).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("grounding/win_move");
    for n in [500usize, 2000] {
        let ast = gen::win_move_ast(&Graph::random_regular_out(n, 3, 17));
        group.bench_with_input(BenchmarkId::new("full", n), &ast, |b, ast| {
            b.iter(|| afp_datalog::ground(ast).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, grounding);
criterion_main!(benches);
