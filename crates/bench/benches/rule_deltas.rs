//! Warm rule deltas versus a cold reload: the acceptance bench for
//! `Session::assert_rules` / `retract_rules`. Before this API existed,
//! any rule change forced a fresh `Engine::load` of the whole program —
//! re-parse, envelope fixpoint, instantiation joins, condensation, full
//! solve. The warm path grounds only the new rule's instances against
//! the retained envelope and re-solves only the forward cone of its
//! heads, copying every other component's truth values.
//!
//! Workload: toggle `q(K) :- a(K).` in and out of a
//! `hard_knot_chain_src(k)` session, one rule delta + warm re-solve per
//! iteration (asserts and retracts alternate, keeping the session
//! steady-state), versus reloading the extended program from text — one
//! program change per iteration on both sides.

use afp::Engine;
use afp_bench::gen::hard_knot_chain_src;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn rule_deltas(c: &mut Criterion) {
    let engine = Engine::default();
    let rule = "q(K) :- a(K).";
    for k in [64usize, 256] {
        let src = hard_knot_chain_src(k);
        let with_rule = format!("{src}{rule}\n");
        let mut group = c.benchmark_group(format!("rule_deltas/knot_chain_{k}"));
        group.bench_with_input(BenchmarkId::new("cold_reload", k), &with_rule, |b, src| {
            // What a rule change cost before: a fresh load of the
            // extended program, from text.
            b.iter(|| engine.solve(src).unwrap())
        });
        group.bench_function(BenchmarkId::new("warm_assert", k), |b| {
            let mut session = engine.load(&src).unwrap();
            session.solve().unwrap();
            let mut present = false;
            b.iter(|| {
                if present {
                    session.retract_rules(rule).unwrap();
                } else {
                    session.assert_rules(rule).unwrap();
                }
                present = !present;
                session.solve().unwrap()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, rule_deltas);
criterion_main!(benches);
