//! Acceptance bench for the networked service tier (`afp::net`), in
//! two parts:
//!
//! * `write_path_*` — one fact-toggle write cycle per iteration,
//!   through each tier of the stack: `service_inproc` is the PR 4
//!   baseline (caller-driven leader election on the submitting
//!   thread), `async_tier` adds the dedicated writer thread and
//!   bounded queue (submit + handle.wait()), and `wire_tcp` adds the
//!   full length-prefixed loopback round trip. The deltas between the
//!   three are the cost of the queue hop and of the transport. After
//!   the `async_tier` run the tier's own p50/p99 submit→completion
//!   latencies (from `NetStats`) are printed for BENCH_net.json.
//!
//! * `mixed_wire_conns_*` — sustained mixed read/write throughput over
//!   the wire: `t` client connections each issue a fixed block of
//!   framed commands (9 queries : 1 write toggle) against one server;
//!   per-iteration time divided into `t × OPS` gives aggregate
//!   commands/sec. Reads run lock-free on pinned snapshots in the
//!   connection threads; writes funnel through the shared writer
//!   queue and coalesce. Connection-count parameterized — on the
//!   1-core CI runner the value of `t` mostly exercises fairness, not
//!   parallel speedup; see BENCH_net.json for the recorded context.

use afp::net::codec::{read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use afp::{AsyncOptions, AsyncService, DeltaKind, Engine, NetOptions, NetServer};
use afp_bench::gen::{node_name, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

fn win_move_src(g: &Graph) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    src
}

fn send(conn: &mut TcpStream, line: &str) -> String {
    write_frame(conn, line.as_bytes()).unwrap();
    String::from_utf8(
        read_frame(conn, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("response frame"),
    )
    .unwrap()
}

fn write_path(c: &mut Criterion) {
    let g = Graph::random_regular_out(256, 3, 42);
    let src = win_move_src(&g);
    let toggle_on = format!("move({}, sink).", node_name(0));
    let mut group = c.benchmark_group("net/write_path_win_move_256");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("tier", "service_inproc"), |b| {
        let service = Engine::default().serve(&src).unwrap();
        let mut present = false;
        b.iter(|| {
            present = !present;
            let v = if present {
                service.assert_facts(&toggle_on).unwrap()
            } else {
                service.retract_facts(&toggle_on).unwrap()
            };
            std::hint::black_box(v)
        })
    });

    group.bench_function(BenchmarkId::new("tier", "async_tier"), |b| {
        let service = Engine::default().serve(&src).unwrap();
        let tier = AsyncService::new(service, AsyncOptions::default());
        let mut present = false;
        b.iter(|| {
            present = !present;
            let kind = if present {
                DeltaKind::AssertFacts
            } else {
                DeltaKind::RetractFacts
            };
            let v = tier.submit(kind, &toggle_on).unwrap().wait().unwrap();
            std::hint::black_box(v)
        });
        let stats = tier.stats();
        eprintln!(
            "async_tier submit->completion latency over {} writes: \
             p50 {} us, p99 {} us (for BENCH_net.json)",
            stats.completed, stats.write_p50_us, stats.write_p99_us
        );
    });

    group.bench_function(BenchmarkId::new("tier", "wire_tcp"), |b| {
        let service = Engine::default().serve(&src).unwrap();
        let tier = Arc::new(AsyncService::new(service, AsyncOptions::default()));
        let server =
            NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        let mut present = false;
        b.iter(|| {
            present = !present;
            let cmd = if present {
                format!("assert-facts {toggle_on}")
            } else {
                format!("retract-facts {toggle_on}")
            };
            std::hint::black_box(send(&mut conn, &cmd))
        });
        drop(conn);
        server.shutdown();
    });

    group.finish();
}

const OPS: usize = 200;

fn mixed_wire(c: &mut Criterion) {
    let g = Graph::random_regular_out(256, 3, 42);
    let service = Engine::default().serve(&win_move_src(&g)).unwrap();
    let tier = Arc::new(AsyncService::new(service, AsyncOptions::default()));
    let server =
        NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap();
    let nodes: Vec<String> = (0..256u32).map(node_name).collect();

    let mut group = c.benchmark_group("net/mixed_wire_win_move_256");
    group.sample_size(10);
    for t in [1usize, 2, 4] {
        let mut conns: Vec<TcpStream> = (0..t)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        group.bench_function(BenchmarkId::new("conns", t), |b| {
            b.iter(|| {
                thread::scope(|s| {
                    for (worker, conn) in conns.iter_mut().enumerate() {
                        let nodes = &nodes;
                        s.spawn(move || {
                            // 9 queries : 1 write toggle; toggles are
                            // worker-namespaced and balanced per block.
                            let mut present = false;
                            for i in 0..OPS {
                                let resp = if i % 10 == 0 {
                                    present = !present;
                                    let kind = if present {
                                        "assert-facts"
                                    } else {
                                        "retract-facts"
                                    };
                                    send(conn, &format!("{kind} move(w{worker}, sink)."))
                                } else {
                                    let node = &nodes[(worker * 7919 + i) % nodes.len()];
                                    send(conn, &format!("query wins({node})"))
                                };
                                std::hint::black_box(resp);
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, write_path, mixed_wire);
criterion_main!(benches);
