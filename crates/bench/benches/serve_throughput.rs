//! Acceptance bench for the concurrent serving subsystem (PR 4), in
//! three parts:
//!
//! * `snapshot_*` — the primitive: cloning a solved ground program for a
//!   model snapshot. `cow` is what `Session::snapshot` does now
//!   (reference-count bumps); `deep` is what it did before this PR
//!   (`GroundProgram::deep_clone`, a full copy of rules, base, symbols
//!   and all three occurrence indices).
//! * `mutate_solve_*` — the loop the CoW layout exists for: one fact
//!   toggle + warm re-solve per iteration, with a model snapshot taken
//!   each cycle. `cow` rides the new storage; `deep_baseline` adds the
//!   pre-PR per-cycle deep clone back in, emulating what every
//!   mutate→solve cycle used to pay on top of the solve.
//! * `read_scaling_*` — reader throughput on one pinned
//!   `afp::service::ModelSnapshot`: `t` threads each run a fixed block
//!   of truth probes against the same immutable version; per-iteration
//!   time divided into `t × QUERIES` gives aggregate queries/sec, which
//!   should grow with `t` (no lock on the read path).

use afp::Engine;
use afp_bench::gen::{hard_knot_chain_src, node_name, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::thread;

fn win_move_src(g: &Graph) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    src
}

fn snapshot_cost(c: &mut Criterion) {
    let engine = Engine::default();
    for k in [64usize, 256] {
        let mut session = engine.load(&hard_knot_chain_src(k)).unwrap();
        session.solve().unwrap();
        let ground = session.ground().clone();
        let mut group = c.benchmark_group(format!("serve/snapshot_knot_{k}"));
        group.bench_function(BenchmarkId::new("cow", k), |b| {
            // What `Session::snapshot` costs now: Arc bumps.
            b.iter(|| std::hint::black_box(ground.clone()))
        });
        group.bench_function(BenchmarkId::new("deep", k), |b| {
            // What it cost before the CoW storage: a full copy.
            b.iter(|| std::hint::black_box(ground.deep_clone()))
        });
        group.finish();
    }
}

fn mutate_solve_loop(c: &mut Criterion) {
    let engine = Engine::default();
    for k in [64usize, 256] {
        let src = hard_knot_chain_src(k);
        let toggle = format!("e(k{}).", k / 2);
        let mut group = c.benchmark_group(format!("serve/mutate_solve_knot_{k}"));
        group.bench_function(BenchmarkId::new("cow", k), |b| {
            let mut session = engine.load(&src).unwrap();
            session.solve().unwrap();
            let mut present = true;
            b.iter(|| {
                if present {
                    session.retract_facts(&toggle).unwrap();
                } else {
                    session.assert_facts(&toggle).unwrap();
                }
                present = !present;
                // The solve takes the (CoW) model snapshot internally.
                session.solve().unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("deep_baseline", k), |b| {
            let mut session = engine.load(&src).unwrap();
            session.solve().unwrap();
            let mut present = true;
            b.iter(|| {
                if present {
                    session.retract_facts(&toggle).unwrap();
                } else {
                    session.assert_facts(&toggle).unwrap();
                }
                present = !present;
                let model = session.solve().unwrap();
                // Emulate the pre-PR snapshot: every mutate→solve cycle
                // deep-cloned the whole ground program.
                std::hint::black_box(session.ground().deep_clone());
                model
            })
        });
        group.finish();
    }
}

const QUERIES: usize = 20_000;

fn read_scaling(c: &mut Criterion) {
    let g = Graph::random_regular_out(256, 3, 42);
    let service = Engine::default().serve(&win_move_src(&g)).unwrap();
    let snapshot = service.snapshot();
    let nodes: Vec<String> = (0..256u32).map(node_name).collect();
    let mut group = c.benchmark_group("serve/read_scaling_win_move_256");
    group.sample_size(10);
    for t in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", t), |b| {
            b.iter(|| {
                thread::scope(|s| {
                    for worker in 0..t {
                        let snapshot = &snapshot;
                        let nodes = &nodes;
                        s.spawn(move || {
                            let mut trues = 0usize;
                            for i in 0..QUERIES {
                                let node = &nodes[(worker * 7919 + i) % nodes.len()];
                                if snapshot.truth("wins", &[node]) == afp::Truth::True {
                                    trues += 1;
                                }
                            }
                            std::hint::black_box(trues)
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, snapshot_cost, mutate_solve_loop, read_scaling);
criterion_main!(benches);
