//! Theorem 7.8 head-to-head: the constructive alternating fixpoint versus
//! the original unfounded-set formulation of the well-founded semantics
//! (and the weaker Fitting fixpoint) on identical inputs. Both are
//! polynomial; the constant factors differ because `W_P` recomputes a
//! greatest-unfounded-set closure per round.

use afp_bench::gen::{self, Graph};
use afp_core::afp::alternating_fixpoint;
use afp_semantics::{fitting_model, well_founded_model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn afp_vs_wfs(c: &mut Criterion) {
    let sizes = [500usize, 2000];
    for n in sizes {
        let g = Graph::random_regular_out(n, 3, 11 + n as u64);
        let prog = gen::win_move_ground(&g);
        let mut group = c.benchmark_group(format!("afp_vs_wfs/n{n}"));
        group.bench_with_input(BenchmarkId::new("alternating", n), &prog, |b, p| {
            b.iter(|| alternating_fixpoint(p))
        });
        group.bench_with_input(BenchmarkId::new("unfounded_sets", n), &prog, |b, p| {
            b.iter(|| well_founded_model(p))
        });
        group.bench_with_input(BenchmarkId::new("fitting", n), &prog, |b, p| {
            b.iter(|| fitting_model(p))
        });
        group.finish();
    }

    // Random ground programs with heavy negation.
    let prog = gen::random_ground_program(2000, 6000, 0.5, 4242);
    let mut group = c.benchmark_group("afp_vs_wfs/random_ground");
    group.bench_function("alternating", |b| b.iter(|| alternating_fixpoint(&prog)));
    group.bench_function("unfounded_sets", |b| b.iter(|| well_founded_model(&prog)));
    group.finish();

    // Component-wise vs global evaluation (the Section 9 tractability
    // direction; see afp-semantics::modular). Knot chains have many small
    // SCCs but shallow global iteration; deep win–move paths force the
    // global computation into Θ(n) alternation rounds while every
    // component stays a singleton — that is where modularity pays.
    for k in [100usize, 400] {
        let prog = gen::knot_chain(k);
        let mut group = c.benchmark_group(format!("afp_vs_wfs/knot_chain_{k}"));
        group.bench_function("global", |b| b.iter(|| alternating_fixpoint(&prog)));
        group.bench_function("modular", |b| b.iter(|| afp_semantics::modular_wfs(&prog)));
        group.finish();
    }
    for n in [256usize, 1024] {
        let prog = gen::win_move_ground(&Graph::path(n));
        let mut group = c.benchmark_group(format!("afp_vs_wfs/deep_path_{n}"));
        group.bench_function("global", |b| b.iter(|| alternating_fixpoint(&prog)));
        group.bench_function("modular", |b| b.iter(|| afp_semantics::modular_wfs(&prog)));
        group.finish();
    }
}

criterion_group!(benches, afp_vs_wfs);
criterion_main!(benches);
