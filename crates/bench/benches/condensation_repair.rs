//! Incremental condensation maintenance versus full rebuild — the
//! acceptance bench for `Condensation::apply_delta`.
//!
//! Three groups per chain size `k`:
//!
//! * `rebuild` / `repair_toggle` — the **condensation step alone**: one
//!   `Condensation::of` over the whole ground program, versus one fact
//!   toggle (remove + re-add the leaf fact rule) with `apply_delta`
//!   after each mutation. The repair walks the delta's window (a couple
//!   of atoms on this workload) however long the chain, so the gap
//!   widens with `k`.
//! * `warm_toggle` / `warm_toggle_rebuild` — **end to end**: a session's
//!   retract → solve → assert → solve cycle on the repair path, versus
//!   the same cycle with a from-scratch `Condensation::of` added per
//!   solve, emulating the pre-repair warm path (which rebuilt the
//!   condensation on the first solve after every mutation).
//!
//! After the timed loops the bench prints the session's repair window
//! as a fraction of the program — the delta-boundedness evidence
//! recorded in `BENCH_cond.json`.

use afp::datalog::depgraph::{Condensation, CondensationDelta, RuleRename};
use afp::Engine;
use afp_bench::gen::hard_knot_chain_src;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn condensation_step(c: &mut Criterion) {
    for k in [64usize, 256, 1024] {
        let engine = Engine::default();
        let mut session = engine.load(&hard_knot_chain_src(k)).unwrap();
        session.solve().unwrap();
        let mut prog = session.ground().clone();
        let mut group = c.benchmark_group(format!("cond/step_{k}"));

        group.bench_function(BenchmarkId::new("rebuild", k), |b| {
            b.iter(|| Condensation::of(&prog))
        });

        // The 1-fact delta: toggle the leaf fact rule e(k{k-1}) off and
        // back on, repairing after each mutation.
        let leaf = prog
            .find_atom_by_name("e", &[&format!("k{}", k - 1)])
            .unwrap();
        let mut cond = Condensation::of(&prog);
        group.bench_function(BenchmarkId::new("repair_toggle", k), |b| {
            b.iter(|| {
                let rid = *prog
                    .rules_with_head(leaf)
                    .iter()
                    .find(|&&r| prog.rule(r).is_fact())
                    .unwrap();
                let mut renames: Vec<RuleRename> = Vec::new();
                prog.remove_rule_logged(rid, &mut renames);
                cond.apply_delta(
                    &prog,
                    &CondensationDelta {
                        touched: &[leaf],
                        new_edge_targets: &[],
                        renames: &renames,
                    },
                );
                prog.push_rule(leaf, vec![], vec![]);
                cond.apply_delta(
                    &prog,
                    &CondensationDelta {
                        touched: &[leaf],
                        new_edge_targets: &[],
                        renames: &[],
                    },
                );
            })
        });
        group.finish();
        assert!(
            cond.is_consistent_with(&prog),
            "the repaired condensation stayed exact across the timed loop"
        );
    }
}

fn warm_solve_one_fact_delta(c: &mut Criterion) {
    for k in [64usize, 256, 1024] {
        let src = hard_knot_chain_src(k);
        let fact = format!("e(k{}).", k - 1);
        let mut group = c.benchmark_group(format!("cond/warm_1fact_{k}"));

        let engine = Engine::default();
        let mut session = engine.load(&src).unwrap();
        session.solve().unwrap();
        group.bench_function(BenchmarkId::new("warm_toggle", k), |b| {
            b.iter(|| {
                session.retract_facts(&fact).unwrap();
                session.solve().unwrap();
                session.assert_facts(&fact).unwrap();
                session.solve().unwrap()
            })
        });
        let stats = *session.stats();
        let atoms = session.ground().atom_count();

        // Pre-repair emulation: the old warm path dropped the memoized
        // condensation on every mutation and rebuilt it (linear) on the
        // next solve — add that rebuild back per solve.
        let mut session2 = engine.load(&src).unwrap();
        session2.solve().unwrap();
        group.bench_function(BenchmarkId::new("warm_toggle_rebuild", k), |b| {
            b.iter(|| {
                session2.retract_facts(&fact).unwrap();
                std::hint::black_box(Condensation::of(session2.ground()));
                session2.solve().unwrap();
                session2.assert_facts(&fact).unwrap();
                std::hint::black_box(Condensation::of(session2.ground()));
                session2.solve().unwrap()
            })
        });
        group.finish();

        assert_eq!(stats.condensation_builds, 1, "repairs, never rebuilds");
        println!(
            "cond/warm_1fact_{k}: repair window {} of {} atoms ({:.2}%), \
             {} repairs, components reused {}/{}",
            stats.last_repair_atoms,
            atoms,
            100.0 * stats.last_repair_atoms as f64 / atoms as f64,
            stats.condensation_repairs,
            stats.last_components_reused,
            stats.last_components,
        );
    }
}

criterion_group!(benches, condensation_step, warm_solve_one_fact_delta);
criterion_main!(benches);
