//! Acceptance bench for the telemetry tier: what does observing a
//! write cycle cost?
//!
//! * `write_cycle/*` — the service's mutate→publish loop (one fact
//!   toggle per iteration through `Service::retract_facts` /
//!   `assert_facts`, i.e. two full write cycles) with telemetry
//!   disabled, enabled (the default: histograms + recent-cycle ring),
//!   and enabled with a live `--trace` stream to a file. Disabled must
//!   be indistinguishable from the pre-telemetry baseline
//!   (BENCH_par.json `warm_cone/threads_1`); enabled and tracing are
//!   the budget for always-on observability.
//! * `record/*` — the primitives in isolation: one `record_cycle`
//!   against a disabled handle (a single branch) and an enabled one
//!   (8 histogram records + 4 counters + the ring push).
//!
//! On the 1-core CI runner these are indicative medians from the
//! criterion shim, not statistics — see vendor/README.md.

use afp::{Engine, PhaseBreakdown, Service, Telemetry, TraceSink};
use afp_bench::gen::hard_knot_chain_src;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const KNOTS: usize = 64;

fn serve(src: &str) -> Service {
    Service::new(Engine::default().load(src).unwrap()).unwrap()
}

fn write_cycle(c: &mut Criterion) {
    let src = hard_knot_chain_src(KNOTS);
    let toggle = format!("e(k{}).", KNOTS / 2);
    let trace_path = std::env::temp_dir().join(format!("afp-bench-trace-{}", std::process::id()));

    let mut group = c.benchmark_group("telemetry/write_cycle");
    for mode in ["disabled", "enabled", "enabled_trace"] {
        group.bench_with_input(BenchmarkId::new("mode", mode), &src, |b, src| {
            let service = serve(src);
            service.set_telemetry(match mode {
                "disabled" => Telemetry::disabled(),
                "enabled" => Telemetry::new(),
                _ => Telemetry::configured(
                    Default::default(),
                    Some(TraceSink::create(&trace_path).unwrap()),
                    None,
                ),
            });
            b.iter(|| {
                service.retract_facts(&toggle).unwrap();
                service.assert_facts(&toggle).unwrap()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&trace_path);
}

fn record(c: &mut Criterion) {
    let breakdown = PhaseBreakdown {
        version: 1,
        width: 1,
        total_ns: 180_000,
        ground_ns: 9_000,
        repair_ns: 2_000,
        condense_ns: 4_000,
        solve_ns: 120_000,
        busy_ns: 110_000,
        steal_ns: 0,
        sleep_ns: 0,
        journal_append_ns: 0,
        fsync_ns: 0,
        publish_ns: 3_000,
    };
    let mut group = c.benchmark_group("telemetry/record");
    for mode in ["disabled", "enabled"] {
        group.bench_with_input(
            BenchmarkId::new("mode", mode),
            &breakdown,
            |b, breakdown| {
                let telemetry = match mode {
                    "disabled" => Telemetry::disabled(),
                    _ => Telemetry::new(),
                };
                b.iter(|| telemetry.record_cycle(std::hint::black_box(breakdown)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, write_cycle, record);
criterion_main!(benches);
