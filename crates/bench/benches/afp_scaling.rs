//! Section 5 complexity claim: the alternating fixpoint is polynomial in
//! the size of the Herbrand base. Win–move instances of growing size; the
//! reported times should grow polynomially (roughly linearly ×
//! alternation depth), never combinatorially.
//!
//! The `chain_of_knots` group is the separating workload for
//! SCC-stratified evaluation: the global alternating fixpoint decides
//! one knot per round (`Θ(k²)` total) while the component-wise path
//! decides each knot locally (`Θ(k)` total). Expect the gap to *grow*
//! with `k`.

use afp_bench::gen::{self, Graph};
use afp_core::afp::alternating_fixpoint;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn afp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("afp_scaling/win_move_random");
    for n in [250usize, 500, 1000, 2000, 4000] {
        let g = Graph::random_regular_out(n, 3, 7 + n as u64);
        let prog = gen::win_move_ground(&g);
        group.throughput(Throughput::Elements(prog.size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| alternating_fixpoint(prog))
        });
    }
    group.finish();

    // Path graphs are the alternation-depth worst case (≈ n/2 rounds, each
    // a linear pass): quadratic total, still polynomial.
    let mut group = c.benchmark_group("afp_scaling/win_move_path");
    for n in [64usize, 256, 1024] {
        let prog = gen::win_move_ground(&Graph::path(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| alternating_fixpoint(prog))
        });
    }
    group.finish();

    // Chains of coupled knots: global Θ(k²) vs SCC-stratified Θ(k).
    let mut group = c.benchmark_group("afp_scaling/chain_of_knots");
    for k in [64usize, 256, 1024] {
        let prog = gen::hard_knot_chain(k);
        group.bench_with_input(BenchmarkId::new("global_afp", k), &prog, |b, prog| {
            b.iter(|| alternating_fixpoint(prog))
        });
        group.bench_with_input(BenchmarkId::new("scc_stratified", k), &prog, |b, prog| {
            b.iter(|| afp_semantics::modular_wfs(prog))
        });
    }
    group.finish();
}

criterion_group!(benches, afp_scaling);
criterion_main!(benches);
