//! Parallel wavefront solving versus the sequential evaluator: the
//! acceptance bench for `EngineBuilder::threads`.
//!
//! Two groups, each at 1/2/4 threads:
//!
//! * `cold_solve` — solve a chain of knots from a cold session. The
//!   condensation of a knot chain is wide (≈5 components per knot, most
//!   of them mutually independent), so the task DAG offers real
//!   parallelism;
//! * `warm_cone` — retract/re-assert a mid-chain fact and re-solve: the
//!   warm path schedules only the delta's forward cone, so this measures
//!   the parallel *sub*-wavefront plus the scheduler's small-graph
//!   fallback behaviour.
//!
//! On a 1-core runner the 2/4-thread numbers measure scheduler overhead,
//! not speedup — BENCH_par.json records `runner_cores` alongside the
//! results for exactly that reason.

use afp::{Engine, Session};
use afp_bench::gen::hard_knot_chain_src;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const KNOTS: usize = 96;

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).build()
}

fn loaded(threads: usize, src: &str) -> Session {
    engine(threads).load(src).unwrap()
}

fn par_solve(c: &mut Criterion) {
    let src = hard_knot_chain_src(KNOTS);

    let mut group = c.benchmark_group("par_solve/cold_solve");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &src, |b, src| {
            let engine = engine(threads);
            b.iter(|| {
                let mut session = engine.load(src).unwrap();
                session.solve().unwrap()
            })
        });
    }
    group.finish();

    let mid = format!("e(k{}).", KNOTS / 2);
    let mut group = c.benchmark_group("par_solve/warm_cone");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &src, |b, src| {
            let mut session = loaded(threads, src);
            session.solve().unwrap();
            b.iter(|| {
                session.retract_facts(&mid).unwrap();
                session.solve().unwrap();
                session.assert_facts(&mid).unwrap();
                session.solve().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, par_solve);
criterion_main!(benches);
