//! Warm `Session` reuse versus cold solve-from-text: the acceptance bench
//! for the `Engine`/`Session` API. The cold path re-parses, re-grounds
//! (envelope fixpoint + instantiation joins) and solves from scratch on
//! every fact update; the warm path extends the existing grounding with
//! the delta and re-solves only what the delta touched — per strongly
//! connected component under the default SCC-stratified strategy.
//!
//! Three groups:
//!
//! * `win_move_path_*` — the original warm-vs-cold single-fact loop;
//! * `leaf_update_*` / `mid_update_*` — update a knot of a chain of
//!   knots: the per-SCC warm path re-evaluates only the knot's forward
//!   dependency cone and copies every other component, versus the global
//!   strategy's seed-restart, which re-pays the cone's full alternation
//!   depth over the whole program;
//! * `batched_asserts_*` — assert N facts in one call (one envelope
//!   delta round) versus N calls (N rounds).

use afp::{Engine, Semantics, Strategy, WfStrategy};
use afp_bench::gen::{hard_knot_chain_src, node_name, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn win_move_src(g: &Graph) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    src
}

fn session_reuse(c: &mut Criterion) {
    let engine = Engine::default();
    for n in [64usize, 256] {
        let g = Graph::path(n);
        let src = win_move_src(&g);
        // The update: one extra edge hanging off the end of the path.
        let new_fact = format!("move({}, x).", node_name(n as u32 - 1));
        let cold_src = format!("{src}{new_fact}\n");

        let mut group = c.benchmark_group(format!("session_reuse/win_move_path_{n}"));
        group.bench_with_input(BenchmarkId::new("cold_text", n), &cold_src, |b, src| {
            // Parse + ground + solve, every time.
            b.iter(|| engine.solve(src).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("warm_session", n), &src, |b, src| {
            let mut session = engine.load(src).unwrap();
            session.solve().unwrap();
            b.iter(|| {
                // Assert + warm re-solve + retract, keeping the session's
                // grounding and conclusions alive across iterations.
                session.assert_facts(&new_fact).unwrap();
                let model = session.solve().unwrap();
                session.retract_facts(&new_fact).unwrap();
                model
            })
        });
        group.finish();
    }
}

fn knot_update(c: &mut Criterion) {
    for k in [64usize, 256] {
        let src = hard_knot_chain_src(k);
        // A leaf update dirties one knot; a mid-chain update dirties the
        // upper half of the chain — the global strategy then pays the
        // full alternation depth of that cone again, while the per-SCC
        // path pays one small alternating fixpoint per affected knot.
        for (site, fact) in [
            ("leaf", format!("e(k{}).", k - 1)),
            ("mid", format!("e(k{}).", k / 2)),
        ] {
            let mut group = c.benchmark_group(format!("session_reuse/{site}_update_{k}"));
            for (name, strategy) in [
                ("scc_warm", WfStrategy::SccStratified),
                ("global_warm", WfStrategy::Global(Strategy::Naive)),
            ] {
                let engine = Engine::builder()
                    .semantics(Semantics::WellFounded { strategy })
                    .build();
                let mut session = engine.load(&src).unwrap();
                session.solve().unwrap();
                group.bench_function(BenchmarkId::new(name, k), |b| {
                    b.iter(|| {
                        session.retract_facts(&fact).unwrap();
                        session.solve().unwrap();
                        session.assert_facts(&fact).unwrap();
                        session.solve().unwrap()
                    })
                });
            }
            group.finish();
        }
    }
}

fn batched_asserts(c: &mut Criterion) {
    let engine = Engine::default();
    for n in [16usize, 64] {
        let g = Graph::path(128);
        let src = win_move_src(&g);
        let facts: Vec<String> = (0..n).map(|i| format!("move(n127, x{i}).")).collect();
        let batch = facts.concat();
        let mut group = c.benchmark_group(format!("session_reuse/batched_asserts_{n}"));
        group.bench_function(BenchmarkId::new("one_call", n), |b| {
            let mut session = engine.load(&src).unwrap();
            session.solve().unwrap();
            b.iter(|| {
                // One grounder delta round for the whole batch…
                session.assert_facts(&batch).unwrap();
                let model = session.solve().unwrap();
                session.retract_facts(&batch).unwrap();
                model
            })
        });
        group.bench_function(BenchmarkId::new("n_calls", n), |b| {
            let mut session = engine.load(&src).unwrap();
            session.solve().unwrap();
            b.iter(|| {
                // …versus one round per fact.
                for f in &facts {
                    session.assert_facts(f).unwrap();
                }
                let model = session.solve().unwrap();
                session.retract_facts(&batch).unwrap();
                model
            })
        });
        group.finish();
    }
}

criterion_group!(benches, session_reuse, knot_update, batched_asserts);
criterion_main!(benches);
