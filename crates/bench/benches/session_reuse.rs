//! Warm `Session` reuse versus cold solve-from-text: the acceptance bench
//! for the `Engine`/`Session` API. The cold path re-parses, re-grounds
//! (envelope fixpoint + instantiation joins) and solves from scratch on
//! every fact update; the warm path extends the existing grounding with
//! the delta and seeds the alternating fixpoint with the surviving
//! negative conclusions.

use afp::Engine;
use afp_bench::gen::{node_name, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn win_move_src(g: &Graph) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    src
}

fn session_reuse(c: &mut Criterion) {
    let engine = Engine::default();
    for n in [64usize, 256] {
        let g = Graph::path(n);
        let src = win_move_src(&g);
        // The update: one extra edge hanging off the end of the path.
        let new_fact = format!("move({}, x).", node_name(n as u32 - 1));
        let cold_src = format!("{src}{new_fact}\n");

        let mut group = c.benchmark_group(format!("session_reuse/win_move_path_{n}"));
        group.bench_with_input(BenchmarkId::new("cold_text", n), &cold_src, |b, src| {
            // Parse + ground + solve, every time.
            b.iter(|| engine.solve(src).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("warm_session", n), &src, |b, src| {
            let mut session = engine.load(src).unwrap();
            session.solve().unwrap();
            b.iter(|| {
                // Assert + warm re-solve + retract, keeping the session's
                // grounding and conclusions alive across iterations.
                session.assert_facts(&new_fact).unwrap();
                let model = session.solve().unwrap();
                session.retract_facts(&new_fact).unwrap();
                model
            })
        });
        group.finish();
    }
}

criterion_group!(benches, session_reuse);
criterion_main!(benches);
