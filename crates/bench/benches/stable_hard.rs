//! Section 2.4: the complexity cliff between the well-founded semantics
//! (polynomial) and stable models (NP-complete). Random 3-SAT instances
//! near the satisfiability phase transition, reduced to normal programs
//! whose stable models are the satisfying assignments. The stable series
//! grows combinatorially with the variable count; the WFS series does not.

use afp_bench::gen;
use afp_core::afp::alternating_fixpoint;
use afp_semantics::stable::{enumerate_stable, EnumerateOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn stable_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_hard");
    group.sample_size(10);
    for n_vars in [8usize, 10, 12] {
        let n_clauses = (n_vars as f64 * 4.26).round() as usize;
        let clauses = gen::random_3sat(n_vars, n_clauses, 99 + n_vars as u64);
        let prog = gen::sat_to_stable(n_vars, &clauses);
        group.bench_with_input(
            BenchmarkId::new("enumerate_stable", n_vars),
            &prog,
            |b, p| {
                b.iter(|| {
                    enumerate_stable(
                        p,
                        &EnumerateOptions {
                            max_models: usize::MAX,
                            max_nodes: 2_000_000,
                        },
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("wfs_same_input", n_vars), &prog, |b, p| {
            b.iter(|| alternating_fixpoint(p))
        });
    }
    group.finish();
}

criterion_group!(benches, stable_hard);
criterion_main!(benches);
