//! Workload generators for the experiment harness and benches.
//!
//! Everything is deterministic under a caller-supplied seed (ChaCha8), so
//! benchmark numbers and property-test failures are reproducible.

use afp_datalog::ast::Program;
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph as an edge list over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of nodes.
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// The path `0 → 1 → … → n-1`.
    pub fn path(n: usize) -> Graph {
        Graph {
            n,
            edges: (0..n.saturating_sub(1) as u32)
                .map(|i| (i, i + 1))
                .collect(),
        }
    }

    /// The cycle `0 → 1 → … → n-1 → 0`.
    pub fn cycle(n: usize) -> Graph {
        let mut g = Graph::path(n);
        if n > 0 {
            g.edges.push((n as u32 - 1, 0));
        }
        g
    }

    /// Erdős–Rényi digraph: each ordered pair (u ≠ v) is an edge with
    /// probability `p`.
    pub fn random(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        Graph { n, edges }
    }

    /// Random DAG: edges only from lower to higher node ids.
    pub fn random_dag(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        Graph { n, edges }
    }

    /// Out-degree-bounded random graph: every node gets exactly `d`
    /// random successors (possibly repeated targets collapse).
    pub fn random_regular_out(n: usize, d: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for _ in 0..d {
                let v = rng.gen_range(0..n as u32);
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph { n, edges }
    }
}

/// Node display name: `n0`, `n1`, ….
pub fn node_name(i: u32) -> String {
    format!("n{i}")
}

/// The win–move game (Example 5.2) as a **ground** program with the move
/// relation compiled away: one rule `w(x) :- not w(y)` per edge, plus a
/// `w` atom for every node (losers with no rules are interned via a
/// self-contained trick: every node's atom appears in some rule of the
/// graph, or is added as an isolated atom through a vacuous rule-free
/// intern).
pub fn win_move_ground(g: &Graph) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    // Intern every node's atom first so the Herbrand base covers sinks.
    let atoms: Vec<_> = (0..g.n as u32)
        .map(|i| b.atom("w", &[node_name(i).as_str()]))
        .collect();
    for &(u, v) in &g.edges {
        b.rule(atoms[u as usize], vec![], vec![atoms[v as usize]]);
    }
    b.finish()
}

/// The win–move game as a non-ground program with an EDB `move` relation —
/// exercises the grounder.
pub fn win_move_ast(g: &Graph) -> Program {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    afp_datalog::parser::parse_program(&src).expect("generated source parses")
}

/// Transitive closure and its complement (Example 2.2), guarded by a
/// `node` relation for safety:
///
/// ```text
/// tc(X,Y) :- e(X,Y).
/// tc(X,Y) :- e(X,Z), tc(Z,Y).
/// ntc(X,Y) :- node(X), node(Y), not tc(X,Y).
/// ```
pub fn tc_ntc_ast(g: &Graph) -> Program {
    let mut src = String::from(
        "tc(X, Y) :- e(X, Y).\n\
         tc(X, Y) :- e(X, Z), tc(Z, Y).\n\
         ntc(X, Y) :- node(X), node(Y), not tc(X, Y).\n",
    );
    for i in 0..g.n as u32 {
        src.push_str(&format!("node({}).\n", node_name(i)));
    }
    for &(u, v) in &g.edges {
        src.push_str(&format!("e({}, {}).\n", node_name(u), node_name(v)));
    }
    afp_datalog::parser::parse_program(&src).expect("generated source parses")
}

/// A random ground normal program: `n_atoms` propositions, `n_rules` rules
/// with geometric-ish body sizes and the given probability that a body
/// literal is negative.
pub fn random_ground_program(
    n_atoms: usize,
    n_rules: usize,
    neg_prob: f64,
    seed: u64,
) -> GroundProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GroundProgramBuilder::new();
    let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
    for _ in 0..n_rules {
        let head = atoms[rng.gen_range(0..n_atoms)];
        let body_len = {
            // Geometric with mean ≈ 2, capped at 4.
            let mut k = 0;
            while k < 4 && rng.gen_bool(0.55) {
                k += 1;
            }
            k
        };
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for _ in 0..body_len {
            let a = atoms[rng.gen_range(0..n_atoms)];
            if rng.gen_bool(neg_prob) {
                neg.push(a);
            } else {
                pos.push(a);
            }
        }
        b.rule(head, pos, neg);
    }
    b.finish()
}

/// A random 3-CNF formula reduced to a normal program whose stable models
/// are exactly the satisfying assignments (the classic NP-hardness
/// construction behind Elkan's result cited in Section 2.4):
///
/// * per variable `v`: `v :- not nv.  nv :- not v.` (choice);
/// * per clause `c`: `satc :- lᵢ.` for each literal, and the constraint
///   `badc :- not satc, not badc.` which admits no stable model unless the
///   clause is satisfied.
pub fn sat_to_stable(n_vars: usize, clauses: &[[i32; 3]]) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let pos_atoms: Vec<_> = (1..=n_vars).map(|v| b.prop(&format!("v{v}"))).collect();
    let neg_atoms: Vec<_> = (1..=n_vars).map(|v| b.prop(&format!("nv{v}"))).collect();
    for v in 0..n_vars {
        b.rule(pos_atoms[v], vec![], vec![neg_atoms[v]]);
        b.rule(neg_atoms[v], vec![], vec![pos_atoms[v]]);
    }
    for (ci, clause) in clauses.iter().enumerate() {
        let sat = b.prop(&format!("sat{ci}"));
        for &lit in clause {
            debug_assert!(lit != 0);
            let atom = if lit > 0 {
                pos_atoms[(lit - 1) as usize]
            } else {
                neg_atoms[(-lit - 1) as usize]
            };
            b.rule(sat, vec![atom], vec![]);
        }
        let bad = b.prop(&format!("bad{ci}"));
        b.rule(bad, vec![], vec![sat, bad]);
    }
    b.finish()
}

/// Random 3-SAT instance (clauses of 3 distinct variables, random signs).
pub fn random_3sat(n_vars: usize, n_clauses: usize, seed: u64) -> Vec<[i32; 3]> {
    assert!(n_vars >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(n_clauses);
    for _ in 0..n_clauses {
        let mut vars = Vec::new();
        while vars.len() < 3 {
            let v = rng.gen_range(1..=n_vars as i32);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let mut c = [0i32; 3];
        for (i, v) in vars.into_iter().enumerate() {
            c[i] = if rng.gen_bool(0.5) { v } else { -v };
        }
        clauses.push(c);
    }
    clauses
}

/// The three game graphs of Figure 4 (Example 5.2).
pub mod fig4 {
    use afp_datalog::program::{GroundProgram, GroundProgramBuilder};

    fn build(nodes: &[&str], edges: &[(&str, &str)]) -> GroundProgram {
        let mut b = GroundProgramBuilder::new();
        let atoms: Vec<_> = nodes.iter().map(|n| b.atom("w", &[n])).collect();
        let ix = |n: &str| nodes.iter().position(|&m| m == n).unwrap();
        for &(u, v) in edges {
            b.rule(atoms[ix(u)], vec![], vec![atoms[ix(v)]]);
        }
        b.finish()
    }

    /// Part (a): acyclic; sinks {c,d,f,h,i}; winners {b,e,g}; `a` loses
    /// because all of its moves reach winners. Total AFP model.
    pub fn part_a() -> GroundProgram {
        build(
            &["a", "b", "c", "d", "e", "f", "g", "h", "i"],
            &[
                ("a", "b"),
                ("a", "e"),
                ("a", "g"),
                ("b", "c"),
                ("b", "d"),
                ("e", "f"),
                ("g", "h"),
                ("g", "i"),
            ],
        )
    }

    /// Part (b): the 2-cycle a ⇄ b with a tail b → c → d. Partial model:
    /// `{w(c), ¬w(d)}`; a, b stay undefined.
    pub fn part_b() -> GroundProgram {
        build(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        )
    }

    /// Part (c): the 2-cycle a ⇄ b with b → c. Total model despite the
    /// cycle: `{w(b), ¬w(a), ¬w(c)}`.
    pub fn part_c() -> GroundProgram {
        build(&["a", "b", "c"], &[("a", "b"), ("b", "a"), ("b", "c")])
    }
}

/// The nine-atom program of Example 5.1 / Table I.
pub fn example_5_1() -> GroundProgram {
    afp_datalog::program::parse_ground(
        "p(a) :- p(c), not p(b).
         p(b) :- not p(a).
         p(c).
         p(d) :- p(e), not p(f).
         p(d) :- p(f), not p(g).
         p(d) :- p(h).
         p(e) :- p(d).
         p(f) :- p(e).
         p(f) :- not p(c).
         p(i) :- p(c), not p(d).",
    )
}

/// A "chain of knots": `k` independent 2-cycles (`aᵢ ← ¬bᵢ; bᵢ ← ¬aᵢ`)
/// linked by decided atoms — many small strongly connected components.
/// The worst case for the *global* alternating fixpoint's iteration count
/// stays trivial here, but the instance exercises component-wise
/// evaluation (`afp-semantics::modular`): cost should scale with the sum
/// of knot sizes, not globally.
pub fn knot_chain(k: usize) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let mut prev_link = None;
    for i in 0..k {
        let a = b.prop(&format!("a{i}"));
        let bb = b.prop(&format!("b{i}"));
        b.rule(a, vec![], vec![bb]);
        b.rule(bb, vec![], vec![a]);
        let link = b.prop(&format!("link{i}"));
        match prev_link {
            None => {
                b.fact(link);
            }
            Some(p) => {
                b.rule(link, vec![p], vec![]);
            }
        }
        prev_link = Some(link);
    }
    b.finish()
}

/// A **coupled** chain of knots: `k` two-atom negative cycles where each
/// knot is broken by the *previous* knot's outcome:
///
/// ```text
/// a₀ :- not b₀.          aᵢ :- not bᵢ.
/// b₀ :- not a₀, not p₋.  bᵢ :- not aᵢ, not pᵢ₋₁.   (p₋ a fact)
/// p₀ :- a₀.              pᵢ :- aᵢ.
/// ```
///
/// Every knot is decided (`pᵢ₋₁` true kills `bᵢ`, so `aᵢ` wins), but the
/// *global* alternating fixpoint can only decide one knot per round —
/// alternation depth `Θ(k)`, total cost `Θ(k²)`. Component-wise
/// evaluation decides each knot in `O(1)` rounds over `O(1)` rules:
/// total `Θ(k)`. This is the separating workload for the SCC-stratified
/// strategy.
pub fn hard_knot_chain(k: usize) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let boot = b.prop("p_start");
    b.fact(boot);
    let mut prev = boot;
    for i in 0..k {
        let a = b.prop(&format!("a{i}"));
        let bb = b.prop(&format!("b{i}"));
        let p = b.prop(&format!("p{i}"));
        b.rule(a, vec![], vec![bb]);
        b.rule(bb, vec![], vec![a, prev]);
        b.rule(p, vec![a], vec![]);
        prev = p;
    }
    b.finish()
}

/// [`hard_knot_chain`] as a non-ground program with the bootstrap fact as
/// an EDB relation, for session/update workloads: retracting or
/// re-asserting `e(kᵢ)` dirties only knot `i`'s forward cone.
///
/// ```text
/// a(K) :- e(K), not b(K).     b(K) :- e(K), not a(K), not pprev(K).
/// p(K) :- a(K).               pprev(K) :- link(J, K), p(J).
/// pprev(k0).
/// ```
pub fn hard_knot_chain_src(k: usize) -> String {
    let mut src = String::from(
        "a(K) :- e(K), not b(K).\n\
         b(K) :- e(K), not a(K), not pprev(K).\n\
         p(K) :- a(K).\n\
         pprev(K) :- link(J, K), p(J).\n\
         pprev(k0).\n",
    );
    for i in 0..k {
        src.push_str(&format!("e(k{i}).\n"));
        if i + 1 < k {
            src.push_str(&format!("link(k{i}, k{}).\n", i + 1));
        }
    }
    src
}

/// A "negation ladder" of depth `k`: `p₀` is a fact and each
/// `pᵢ₊₁ ← ¬pᵢ` alternates — a long chain of singleton components with
/// negative links; stratified, decided all the way up.
pub fn negation_ladder(k: usize) -> GroundProgram {
    let mut b = GroundProgramBuilder::new();
    let mut prev = b.prop("p0");
    b.fact(prev);
    for i in 1..=k {
        let p = b.prop(&format!("p{i}"));
        b.rule(p, vec![], vec![prev]);
        prev = p;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shapes() {
        let p = Graph::path(5);
        assert_eq!(p.edges.len(), 4);
        let c = Graph::cycle(5);
        assert_eq!(c.edges.len(), 5);
        let d = Graph::random_dag(10, 0.3, 7);
        assert!(d.edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Graph::random(20, 0.2, 42);
        let b = Graph::random(20, 0.2, 42);
        assert_eq!(a.edges, b.edges);
        let c = Graph::random(20, 0.2, 43);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn win_move_ground_covers_sinks() {
        let g = Graph::path(3);
        let p = win_move_ground(&g);
        assert_eq!(p.atom_count(), 3, "sink n2 must be in the base");
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn sat_reduction_counts_models() {
        // (x1 ∨ x2 ∨ x3): 7 of 8 assignments satisfy.
        let prog = sat_to_stable(3, &[[1, 2, 3]]);
        let models = afp_semantics::stable::stable_models(&prog);
        assert_eq!(models.len(), 7);
        let prog2 = sat_to_stable(3, &[[1, 1, 1], [-1, -1, -1]]);
        assert!(afp_semantics::stable::stable_models(&prog2).is_empty());
    }

    #[test]
    fn random_ground_program_is_reproducible() {
        let a = random_ground_program(20, 40, 0.4, 9);
        let b = random_ground_program(20, 40, 0.4, 9);
        assert_eq!(a.rule_count(), b.rule_count());
        for (x, y) in a.rules().zip(b.rules()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn tc_ntc_parses_and_grounds() {
        let ast = tc_ntc_ast(&Graph::path(3));
        let g = afp_datalog::ground(&ast).unwrap();
        assert!(g.rule_count() > 0);
    }

    #[test]
    fn knot_chain_has_many_small_components() {
        let g = knot_chain(5);
        assert_eq!(g.atom_count(), 15);
        let r = afp_semantics::modular_wfs(&g);
        assert!(r.components >= 10);
        assert!(r.largest_component <= 2);
    }

    #[test]
    fn hard_knot_chain_is_total_and_separating() {
        let g = hard_knot_chain(8);
        let global = afp_core::alternating_fixpoint(&g);
        assert!(global.is_total, "every knot is decided by its predecessor");
        let modular = afp_semantics::modular_wfs(&g);
        assert_eq!(modular.model, global.model);
        // One knot decided per global round: alternation depth Θ(k).
        assert!(
            global.iterations >= 8,
            "global alternation must walk the chain ({} rounds)",
            global.iterations
        );
        assert!(modular.largest_component <= 2);
        // Winners all the way up.
        for i in 0..8 {
            let a = g.find_atom_by_name(&format!("a{i}"), &[]).unwrap();
            assert!(global.model.pos.contains(a.0));
        }
    }

    #[test]
    fn hard_knot_chain_src_matches_ground_shape() {
        let src = hard_knot_chain_src(6);
        let ast = afp_datalog::parser::parse_program(&src).unwrap();
        let g = afp_datalog::ground(&ast).unwrap();
        let r = afp_core::alternating_fixpoint(&g);
        assert!(r.is_total);
        for i in 0..6 {
            let a = g.find_atom_by_name("a", &[&format!("k{i}")]).unwrap();
            assert!(r.model.pos.contains(a.0), "a(k{i}) wins");
        }
    }

    #[test]
    fn negation_ladder_is_total_and_alternating() {
        let g = negation_ladder(6);
        let r = afp_core::alternating_fixpoint(&g);
        assert!(r.is_total);
        // p0 true, p1 false, p2 true, …
        let p0 = g.find_atom_by_name("p0", &[]).unwrap();
        let p1 = g.find_atom_by_name("p1", &[]).unwrap();
        let p2 = g.find_atom_by_name("p2", &[]).unwrap();
        assert!(r.model.pos.contains(p0.0));
        assert!(r.model.neg.contains(p1.0));
        assert!(r.model.pos.contains(p2.0));
    }
}
