//! Regenerates every table and figure of Van Gelder's alternating-fixpoint
//! paper, printing paper-expected values next to measured ones.
//!
//! ```text
//! experiments [table1|fig4|ex22|ex61|ex82|sandwich|poly|npc|all]
//! ```

use afp_bench::gen::{self, Graph};
use afp_core::afp::{alternating_fixpoint, alternating_fixpoint_with, AfpOptions};
use afp_core::interp::PartialModel;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;
use afp_semantics::stable::{enumerate_stable, EnumerateOptions};
use std::time::Instant;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "table1" => table1(),
        "fig4" => fig4(),
        "ex22" => ex22(),
        "ex61" => ex61(),
        "ex82" => ex82(),
        "sandwich" => sandwich(),
        "poly" => poly(),
        "npc" => npc(),
        "all" => {
            table1();
            fig4();
            ex22();
            ex61();
            ex82();
            sandwich();
            poly();
            npc();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!("usage: experiments [table1|fig4|ex22|ex61|ex82|sandwich|poly|npc|all]");
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn fmt_set(prog: &GroundProgram, set: &AtomSet) -> String {
    let names = prog.set_to_names(set);
    if names.is_empty() {
        "∅".to_string()
    } else {
        format!("{{{}}}", names.join(", "))
    }
}

fn fmt_neg_set(prog: &GroundProgram, set: &AtomSet) -> String {
    let names = prog.set_to_names(set);
    if names.is_empty() {
        "∅".to_string()
    } else {
        let negs: Vec<String> = names.iter().map(|n| format!("¬{n}")).collect();
        format!("{{{}}}", negs.join(", "))
    }
}

fn fmt_model(prog: &GroundProgram, m: &PartialModel) -> String {
    let mut lits = m.to_literal_names(prog);
    if lits.is_empty() {
        return "∅".into();
    }
    for l in &mut lits {
        if let Some(rest) = l.strip_prefix("not ") {
            *l = format!("¬{rest}");
        }
    }
    format!("{{{}}}", lits.join(", "))
}

/// Table I: the alternating sequence on Example 5.1.
fn table1() {
    banner("TABLE I  (Example 5.1) — the alternating sequence Ĩ_k, S_P(Ĩ_k)");
    let g = gen::example_5_1();
    let r = alternating_fixpoint_with(
        &g,
        &AfpOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    println!("{:<3} {:<58} S_P(Ĩ_k)", "k", "Ĩ_k (negative conclusions)");
    for step in &r.trace.as_ref().unwrap().steps {
        println!(
            "{:<3} {:<58} {}",
            step.k,
            fmt_neg_set(&g, &step.i_tilde),
            fmt_set(&g, &step.s_p)
        );
    }
    println!("\nAFP partial model : {}", fmt_model(&g, &r.model));
    println!("undefined         : {}", fmt_set(&g, &r.undefined()));
    println!("paper expects     : {{p(c), p(i), ¬p(d), ¬p(e), ¬p(f), ¬p(g), ¬p(h)}} with p(a), p(b) undefined");
}

/// Figure 4: the three win–move graphs of Example 5.2.
fn fig4() {
    banner("FIGURE 4  (Example 5.2) — win–move games");
    let cases = [
        (
            "(a) acyclic",
            gen::fig4::part_a(),
            "total model: w{b,e,g} true, w{a,c,d,f,h,i} false",
        ),
        (
            "(b) cyclic, partial",
            gen::fig4::part_b(),
            "partial model: {w(c), ¬w(d)}; w(a), w(b) undefined",
        ),
        (
            "(c) cyclic, total",
            gen::fig4::part_c(),
            "total model: {w(b), ¬w(a), ¬w(c)}",
        ),
    ];
    for (name, prog, expected) in cases {
        let r = alternating_fixpoint(&prog);
        println!("\n{name}");
        println!("  AFP model  : {}", fmt_model(&prog, &r.model));
        println!("  undefined  : {}", fmt_set(&prog, &r.undefined()));
        println!(
            "  total?     : {}   S̃_P-fixpoint? {}",
            r.is_total, r.is_stable_fixpoint
        );
        println!("  paper      : {expected}");
    }
}

/// Example 2.2: complement of transitive closure under three semantics.
fn ex22() {
    banner("EXAMPLE 2.2 — ntc (complement of transitive closure): WFS vs IFP");
    // Graph: n0 ⇄ n1 cycle plus isolated node n2 (the Minker-objection
    // graph of Section 2.1).
    let g = Graph {
        n: 3,
        edges: vec![(0, 1), (1, 0)],
    };
    let ast = gen::tc_ntc_ast(&g);
    let ground = afp_datalog::ground(&ast).expect("grounds");
    let wfs = alternating_fixpoint(&ground);
    let ifp = afp_semantics::inflationary::inflationary_fixpoint(&ground);

    let count = |set: &AtomSet, pred: &str| {
        ground
            .set_to_names(set)
            .iter()
            .filter(|n| n.starts_with(&format!("{pred}(")))
            .count()
    };
    println!("graph: n0 ⇄ n1 cycle, n2 isolated; 9 ordered pairs");
    println!("\n{:<28} {:>8} {:>8}", "semantics", "tc true", "ntc true");
    println!(
        "{:<28} {:>8} {:>8}",
        "well-founded (AFP)",
        count(&wfs.model.pos, "tc"),
        count(&wfs.model.pos, "ntc")
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "inflationary (IFP)",
        count(&ifp.model, "tc"),
        count(&ifp.model, "ntc")
    );
    println!(
        "\nWFS: tc = 4 pairs {{(0,1),(1,0),(0,0),(1,1)}}; ntc = the other 5 — the natural complement."
    );
    println!(
        "IFP: ntc gets ALL {} pairs: ¬tc(X,Y) held for every pair in round one and IFP never retracts (the paper's objection to the inflationary semantics).",
        count(&ifp.model, "ntc")
    );
    println!("WFS is total here: {}", wfs.is_total);
    let strat =
        afp_semantics::stratified::perfect_model(&ground).expect("tc/ntc is locally stratified");
    println!(
        "stratified (perfect) model agrees with WFS: {}",
        strat.model == wfs.model
    );
}

/// Example 6.1: unfounded sets.
fn ex61() {
    banner("EXAMPLE 6.1 — unfounded sets w.r.t. I = {p(c), ¬p(g), ¬p(h)}");
    let g = gen::example_5_1();
    let u = g.atom_count();
    let atom = |p: &str, a: &str| g.find_atom_by_name(p, &[a]).unwrap().0;
    let interp = PartialModel::new(
        AtomSet::from_iter(u, [atom("p", "c")]),
        AtomSet::from_iter(u, [atom("p", "g"), atom("p", "h")]),
    );
    let u1 = AtomSet::from_iter(u, [atom("p", "d"), atom("p", "e"), atom("p", "f")]);
    let u2 = AtomSet::from_iter(u, [atom("p", "a"), atom("p", "b")]);
    println!(
        "U1 = {}  unfounded? {}   (paper: yes)",
        fmt_set(&g, &u1),
        afp_semantics::unfounded::is_unfounded_set(&g, &interp, &u1)
    );
    println!(
        "U2 = {}  unfounded? {}   (paper: no)",
        fmt_set(&g, &u2),
        afp_semantics::unfounded::is_unfounded_set(&g, &interp, &u2)
    );
    let gus = afp_semantics::unfounded::greatest_unfounded_set(&g, &interp);
    println!("greatest unfounded set U_P(I) = {}", fmt_set(&g, &gus));
}

/// Example 8.2: well-founded nodes via FO bodies and Lloyd–Topor.
fn ex82() {
    banner("EXAMPLE 8.2 — well-founded nodes: FP formula → normal program");
    use afp_datalog::ast::{Atom, Term};
    use afp_fol::formula::{Formula, GeneralProgram, GeneralRule};

    // w(X) ← node(X) ∧ ¬∃Y[e(Y,X) ∧ ¬w(Y)] over a graph with a cycle
    // (a ⇄ b) feeding c, and a well-founded chain d → e2.
    let mut y = GeneralProgram::new();
    let w = y.symbols.intern("w");
    let e = y.symbols.intern("e");
    let node = y.symbols.intern("node");
    let xv = y.symbols.intern("X");
    let yv = y.symbols.intern("Y");
    let body = Formula::And(vec![
        Formula::Atom(Atom::new(node, vec![Term::Var(xv)])),
        Formula::not(Formula::exists(
            vec![yv],
            Formula::And(vec![
                Formula::Atom(Atom::new(e, vec![Term::Var(yv), Term::Var(xv)])),
                Formula::not(Formula::Atom(Atom::new(w, vec![Term::Var(yv)]))),
            ]),
        )),
    ]);
    y.rules.push(GeneralRule {
        head: Atom::new(w, vec![Term::Var(xv)]),
        body,
    });
    for n in ["a", "b", "c", "d", "e2"] {
        let c = y.symbols.intern(n);
        y.facts.push(Atom::new(node, vec![Term::Const(c)]));
    }
    for (u, v) in [("a", "b"), ("b", "a"), ("a", "c"), ("d", "e2")] {
        let cu = y.symbols.intern(u);
        let cv = y.symbols.intern(v);
        y.facts
            .push(Atom::new(e, vec![Term::Const(cu), Term::Const(cv)]));
    }

    // Route 1: direct FP evaluation (Theorem 8.1 applies: w occurs
    // positively).
    let (fp, ctx) = afp_fol::fp_model(&y).expect("FP system");
    let fp_w: Vec<String> = ctx
        .set_to_names(&y, &fp)
        .into_iter()
        .filter(|n| n.starts_with("w("))
        .collect();
    println!("FP model, w relation        : {fp_w:?}");

    // Route 2: Lloyd–Topor to a normal program, ground, AFP.
    let t = afp_fol::lloyd_topor(&y);
    println!("\nLloyd–Topor result:");
    for r in &t.program.rules {
        if !r.is_fact() {
            println!(
                "  {}",
                afp_datalog::ast::display_rule(r, &t.program.symbols)
            );
        }
    }
    for aux in &t.aux {
        println!(
            "  aux {} replaces {} — globally {}",
            t.program.symbols.name(aux.pred),
            aux.replaced,
            if aux.globally_positive {
                "positive"
            } else {
                "negative"
            }
        );
    }
    let ground = afp_datalog::ground_with(
        &t.program,
        &afp_datalog::GroundOptions {
            safety: afp_datalog::SafetyPolicy::ActiveDomain,
            ..Default::default()
        },
    )
    .expect("grounds");
    let afp = alternating_fixpoint(&ground);
    let afp_w: Vec<String> = ground
        .set_to_names(&afp.model.pos)
        .into_iter()
        .filter(|n| n.starts_with("w("))
        .collect();
    println!("\nAFP⁺ of the normal program, w relation: {afp_w:?}");
    println!("Theorem 8.7 (positive parts agree): {}", fp_w == afp_w);
    println!("paper: well-founded nodes are exactly those with no infinite descending chain — here w(d), w(e2) (the a ⇄ b cycle poisons a, b, c).");
}

/// Figure 2: the sandwich invariant on a random program.
fn sandwich() {
    banner("FIGURE 2 — under/over chains sandwich the well-founded negatives");
    let g = gen::random_ground_program(40, 80, 0.5, 20260608);
    let r = alternating_fixpoint_with(
        &g,
        &AfpOptions {
            record_trace: true,
            ..Default::default()
        },
    );
    let trace = r.trace.as_ref().unwrap();
    println!("random ground program: 40 atoms, 80 rules, seed 20260608");
    println!(
        "{:<4} {:>8} {:>12} {:>16}",
        "k", "|Ĩ_k|", "|S_P(Ĩ_k)|", "side"
    );
    for s in &trace.steps {
        let side = if s.k % 2 == 0 {
            "under (⊆ W̃)"
        } else {
            "over (⊇ W̃)"
        };
        let ok = if s.k % 2 == 0 {
            s.i_tilde.is_subset(&r.negative_fixpoint)
        } else {
            r.negative_fixpoint.is_subset(&s.i_tilde)
        };
        println!(
            "{:<4} {:>8} {:>12} {:>16}   invariant holds: {}",
            s.k,
            s.i_tilde.count(),
            s.s_p.count(),
            side,
            ok
        );
    }
    println!(
        "|W̃| = {}   |W⁺| = {}   undefined = {}",
        r.negative_fixpoint.count(),
        r.model.pos.count(),
        r.undefined().count()
    );
}

/// Section 5 complexity claim: AFP is polynomial in |H|.
fn poly() {
    banner("SECTION 5 — AFP runs in polynomial time (win–move scaling)");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12}",
        "nodes", "atoms", "rules", "afp (ms)", "iterations"
    );
    let mut last: Option<(f64, f64)> = None;
    for n in [250usize, 500, 1000, 2000, 4000, 8000] {
        let g = Graph::random(n, 1.5 / n as f64, 7 + n as u64);
        let prog = gen::win_move_ground(&g);
        let t0 = Instant::now();
        let r = alternating_fixpoint(&prog);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        print!(
            "{:>8} {:>10} {:>10} {:>12.3} {:>12}",
            n,
            prog.atom_count(),
            prog.rule_count(),
            dt,
            r.iterations
        );
        if let Some((pn, pt)) = last {
            let slope = (dt.ln() - pt.ln()) / ((n as f64).ln() - pn.ln());
            print!("   doubling exponent ≈ {slope:.2}");
        }
        println!();
        last = Some((n as f64, dt));
    }
    println!("paper: \"for finite H … computable in time that is polynomial in the size of H\" — the exponent should stay bounded (≈1–2), not explode.");

    // Worst-case iteration depth: the path graph forces ≈ n/2 alternations.
    println!("\nWorst-case alternation depth (path graphs):");
    println!("{:>8} {:>12}", "nodes", "iterations");
    for n in [16usize, 64, 256, 1024] {
        let prog = gen::win_move_ground(&Graph::path(n));
        let r = alternating_fixpoint(&prog);
        println!("{:>8} {:>12}", n, r.iterations);
    }
}

/// Section 2.4: stable models are NP-complete — exponential search vs
/// polynomial WFS on the same instances.
fn npc() {
    banner("SECTION 2.4 — stable models are NP-complete (3-SAT reduction)");
    println!(
        "{:>6} {:>8} {:>10} {:>14} {:>14} {:>8}",
        "vars", "clauses", "atoms", "wfs (ms)", "stable (ms)", "models"
    );
    for n_vars in [6usize, 9, 12, 15] {
        let n_clauses = (n_vars as f64 * 4.26).round() as usize;
        let clauses = gen::random_3sat(n_vars, n_clauses, 99 + n_vars as u64);
        let prog = gen::sat_to_stable(n_vars, &clauses);
        let t0 = Instant::now();
        let _wfs = alternating_fixpoint(&prog);
        let wfs_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let res = enumerate_stable(
            &prog,
            &EnumerateOptions {
                max_models: usize::MAX,
                max_nodes: 1_000_000,
            },
        );
        let st_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>6} {:>8} {:>10} {:>14.3} {:>14.3} {:>8}{}",
            n_vars,
            n_clauses,
            prog.atom_count(),
            wfs_ms,
            st_ms,
            res.models.len(),
            if res.complete { "" } else { " (truncated)" }
        );
    }
    println!("paper: WFS is polynomial [VGRS]; stable-model existence is NP-complete (Elkan; Marek & Truszczyński). The stable column grows combinatorially while the WFS column stays flat.");
}
