//! # afp-bench — workloads, the experiment harness, and benches
//!
//! * [`gen`] — deterministic workload generators: graphs, win–move and
//!   tc/ntc programs, random ground programs, and the SAT→stable-models
//!   reduction behind the NP-completeness discussion of Section 2.4;
//! * [`game`] — an independent retrograde-analysis solver for the win–move
//!   game of Example 5.2, used as ground truth;
//! * the `experiments` binary regenerates every table and figure of the
//!   paper (see EXPERIMENTS.md at the workspace root);
//! * `benches/` holds the Criterion benchmarks for the complexity claims.

#![warn(missing_docs)]

pub mod game;
pub mod gen;

pub use game::{solve, GameValue};
pub use gen::Graph;
