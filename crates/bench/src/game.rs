//! Reference solver for the win–move game (Example 5.2).
//!
//! Independent of all logic-programming machinery: classic retrograde
//! analysis. A position *loses* when it has no moves or every move reaches
//! a winning position; *wins* when some move reaches a losing position;
//! positions decided by neither rule (cycles) are *drawn*. The paper's
//! claim — `wins(x)` is true / false / undefined in the well-founded model
//! exactly as x wins / loses / draws — is property-tested against this
//! solver in the integration suite.

use crate::gen::Graph;

/// Game-theoretic value of a position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameValue {
    /// The player to move wins.
    Win,
    /// The player to move loses.
    Lose,
    /// Neither side can force a result (infinite play).
    Draw,
}

/// Solve the game on a graph by retrograde analysis (BFS from sinks).
pub fn solve(g: &Graph) -> Vec<GameValue> {
    let n = g.n;
    let mut succ_count = vec![0u32; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in &g.edges {
        succ_count[u as usize] += 1;
        preds[v as usize].push(u);
    }
    let mut value: Vec<Option<GameValue>> = vec![None; n];
    let mut queue: Vec<u32> = Vec::new();
    for x in 0..n {
        if succ_count[x] == 0 {
            value[x] = Some(GameValue::Lose);
            queue.push(x as u32);
        }
    }
    // `remaining[x]`: undecided successors; when it hits zero with no
    // losing successor found, x loses.
    let mut remaining = succ_count.clone();
    while let Some(x) = queue.pop() {
        let vx = value[x as usize].expect("queued positions are decided");
        for &p in &preds[x as usize] {
            if value[p as usize].is_some() {
                continue;
            }
            match vx {
                GameValue::Lose => {
                    value[p as usize] = Some(GameValue::Win);
                    queue.push(p);
                }
                GameValue::Win => {
                    remaining[p as usize] -= 1;
                    if remaining[p as usize] == 0 {
                        value[p as usize] = Some(GameValue::Lose);
                        queue.push(p);
                    }
                }
                GameValue::Draw => unreachable!("draws are never queued"),
            }
        }
    }
    value
        .into_iter()
        .map(|v| v.unwrap_or(GameValue::Draw))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_alternates() {
        // 0 → 1 → 2: 2 loses (sink), 1 wins, 0 loses.
        let v = solve(&Graph::path(3));
        assert_eq!(v, vec![GameValue::Lose, GameValue::Win, GameValue::Lose]);
    }

    #[test]
    fn even_path() {
        // 0 → 1 → 2 → 3: 3 L, 2 W, 1 L, 0 W.
        let v = solve(&Graph::path(4));
        assert_eq!(
            v,
            vec![
                GameValue::Win,
                GameValue::Lose,
                GameValue::Win,
                GameValue::Lose
            ]
        );
    }

    #[test]
    fn pure_cycle_is_all_draws() {
        let v = solve(&Graph::cycle(4));
        assert!(v.iter().all(|&x| x == GameValue::Draw));
    }

    #[test]
    fn cycle_with_escape_to_loser() {
        // 0 ⇄ 1, 1 → 2 (sink): 2 loses, 1 wins (move to 2), 0 loses
        // (only move reaches the winner 1)? No: 0's only move is to 1
        // (winner) ⇒ 0 loses. Mirrors Figure 4(c).
        let g = Graph {
            n: 3,
            edges: vec![(0, 1), (1, 0), (1, 2)],
        };
        let v = solve(&g);
        assert_eq!(v, vec![GameValue::Lose, GameValue::Win, GameValue::Lose]);
    }

    #[test]
    fn cycle_with_tail_leaves_draws() {
        // 0 ⇄ 1, 1 → 2 → 3: 3 L, 2 W; 0,1 draw (1 can avoid losing by
        // cycling; 0 likewise). Mirrors Figure 4(b).
        let g = Graph {
            n: 4,
            edges: vec![(0, 1), (1, 0), (1, 2), (2, 3)],
        };
        let v = solve(&g);
        assert_eq!(v[3], GameValue::Lose);
        assert_eq!(v[2], GameValue::Win);
        assert_eq!(v[0], GameValue::Draw);
        assert_eq!(v[1], GameValue::Draw);
    }

    #[test]
    fn empty_graph() {
        let v = solve(&Graph {
            n: 0,
            edges: vec![],
        });
        assert!(v.is_empty());
    }
}
