//! CI smoke: telemetry must be free when disabled and near-free when
//! enabled.
//!
//! Measures the service's toggle write cycle (the BENCH_par.json
//! `warm_cone` shape, through `Service` so the telemetry seam is on
//! the path) with telemetry disabled and enabled, in interleaved
//! rounds so clock drift and CI-runner noise hit both sides equally,
//! and asserts the medians agree within a generous 2× bound. The
//! honest numbers live in BENCH_telemetry.json; this test only guards
//! gross regressions (telemetry accidentally doing per-cycle
//! allocation, locking, or I/O on the disabled path).

use afp::{Engine, Service, Telemetry};
use afp_bench::gen::hard_knot_chain_src;
use std::time::Instant;

const KNOTS: usize = 64;
const ROUNDS: usize = 5;
const CYCLES_PER_ROUND: usize = 16;

fn serve(src: &str) -> Service {
    Service::new(Engine::default().load(src).unwrap()).unwrap()
}

/// Median per-toggle time (two write cycles) over one round.
fn round_ns(service: &Service, toggle: &str) -> u64 {
    let mut samples = Vec::with_capacity(CYCLES_PER_ROUND);
    for _ in 0..CYCLES_PER_ROUND {
        let started = Instant::now();
        service.retract_facts(toggle).unwrap();
        service.assert_facts(toggle).unwrap();
        samples.push(started.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn median(mut rounds: Vec<u64>) -> u64 {
    rounds.sort_unstable();
    rounds[rounds.len() / 2]
}

#[test]
fn disabled_telemetry_overhead_is_within_noise() {
    let src = hard_knot_chain_src(KNOTS);
    let toggle = format!("e(k{}).", KNOTS / 2);
    let disabled = serve(&src);
    disabled.set_telemetry(Telemetry::disabled());
    let enabled = serve(&src);

    // Warm both services past their cold first cycles.
    round_ns(&disabled, &toggle);
    round_ns(&enabled, &toggle);

    let mut disabled_rounds = Vec::with_capacity(ROUNDS);
    let mut enabled_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        disabled_rounds.push(round_ns(&disabled, &toggle));
        enabled_rounds.push(round_ns(&enabled, &toggle));
    }
    let disabled_ns = median(disabled_rounds);
    let enabled_ns = median(enabled_rounds);

    // A write cycle is ~10⁵ ns of solving; telemetry records ~10² ns.
    // 2× in either direction is far beyond honest overhead and well
    // within what a loaded CI runner can produce by accident.
    assert!(
        enabled_ns <= disabled_ns.saturating_mul(2),
        "enabled telemetry more than doubled the write cycle: \
         disabled {disabled_ns}ns, enabled {enabled_ns}ns"
    );
    assert!(
        disabled_ns <= enabled_ns.saturating_mul(2),
        "disabled telemetry slower than enabled — measurement is broken: \
         disabled {disabled_ns}ns, enabled {enabled_ns}ns"
    );

    // And the enabled side actually recorded what we ran.
    let recorded = enabled.telemetry().registry().unwrap().cycles.get();
    assert!(recorded >= (ROUNDS * CYCLES_PER_ROUND * 2) as u64);
    assert!(disabled.telemetry().registry().is_none());
}
