//! Offline stand-in for the `proptest` crate.
//!
//! <div class="warning">
//!
//! **This is not the real `proptest`.** It is a path dependency wired
//! in under the real crate name (see the crate manifests and
//! `vendor/README.md`), so property tests in this
//! workspace run with **far weaker case generation and no shrinking**
//! than upstream: a small deterministic case budget, naive uniform
//! value distributions (no edge-case biasing), and unminimized failure
//! reports. A passing property test here is much weaker evidence than
//! the same test under real proptest.
//!
//! </div>
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the strategy-combinator subset the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, [`strategy::Just`], integer-range and tuple
//! strategies, [`collection::vec`], `any::<bool>()`, the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` and `prop_assume!`
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports the case number; cases are
//!   generated deterministically from the test's name, so failures
//!   reproduce on re-run;
//! * **no persistence** (`proptest-regressions` files are neither read
//!   nor written);
//! * rejected cases (`prop_assume!`) are simply skipped, not retried.
//!
//! Swap the path dependency for the registry crate to restore full
//! behavior; the test sources need no changes.

#![warn(missing_docs)]

/// Deterministic case generation and test configuration.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out.
        Reject(String),
        /// `prop_assert!`-family failure.
        Fail(String),
    }

    /// Runner configuration (only `cases` is honored by this shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator seeding case generation. Seeded from the test
    /// name so every test has an independent, stable stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The [`Strategy`] trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Build recursive structures: `self` generates leaves, `recurse`
        /// wraps an inner strategy one level deeper. `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility and
        /// ignored; recursion is bounded by `depth` alone.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = recurse(s.clone()).boxed();
            }
            s
        }

        /// Type-erase the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $ix:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], convertible from `usize` (exact),
    /// `Range<usize>` and `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy, mirroring `proptest::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = core::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, i8, i16, i32);

    /// The canonical strategy for `A`, mirroring `proptest::prelude::any`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define `#[test]` functions over generated inputs, mirroring
/// `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    // Strategy expressions are pure constructors; rebuilding
                    // them per case keeps this macro free of identifier
                    // gymnastics at negligible cost.
                    #[allow(unused_parens)]
                    let ($($pat),+) = ($($crate::strategy::Strategy::generate(
                        &($strat), &mut rng
                    )),+);
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
}
