//! Offline stand-in for the `criterion` crate.
//!
//! <div class="warning">
//!
//! **This is not the real `criterion`.** It is a path dependency wired
//! in under the real crate name (see the crate manifests and
//! `vendor/README.md`): timings come from a plain
//! `Instant` loop with no statistics engine, outlier rejection, or
//! saved baselines, so reported numbers are indicative only.
//!
//! </div>
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the subset of the Criterion API the `afp-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up briefly and then
//! timed with `std::time::Instant`; median and mean per-iteration times
//! are printed. There is no statistics engine, no HTML report, and no
//! saved baselines — swap the path dependency for the registry crate to
//! get those back.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Passed through from `criterion_group!`'s config position; this shim
    /// keeps defaults.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a closure directly under this `Criterion`'s defaults.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Lower or raise the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record the per-iteration workload size (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        println!("{}: throughput {} elements/iter", self.name, n);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, D: fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id (the group name supplies the function part).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Per-iteration workload size annotation.
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `body`, once per sample after a short warm-up. In test mode
    /// (`--test` on the command line, as real Criterion spells it) the
    /// body runs exactly once and nothing is timed — the CI smoke step
    /// uses this to keep the benches compiling and running without
    /// paying for measurements.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut body: R) {
        if test_mode() {
            black_box(body());
            return;
        }
        for _ in 0..2 {
            black_box(body());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// `--test` anywhere on the command line: run each benchmark body once,
/// measure nothing (the flag real Criterion's test mode uses, so CI
/// invocations keep working after swapping in the registry crate).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Opaque value sink preventing the optimizer from deleting the benchmark
/// body (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if test_mode() {
        println!("{id}: ok (test mode, ran once)");
        return;
    }
    if b.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{id}: median {:?}  mean {:?}  ({} samples)",
        median,
        mean,
        b.samples.len()
    );
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion_group!`. Both the plain and the `config = …` forms are
/// accepted; the config expression is evaluated and discarded.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
