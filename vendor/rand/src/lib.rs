//! Offline stand-in for the `rand` crate.
//!
//! <div class="warning">
//!
//! **This is not the real `rand`.** It is a path dependency wired in
//! under the real crate name (see the crate manifests and
//! `vendor/README.md`); it covers only the tiny API surface `afp-bench`
//! uses and its streams differ from upstream.
//!
//! </div>
//!
//! The real `rand` cannot be fetched in this build environment, so this
//! crate provides the small API surface `afp-bench` relies on — `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], plus [`Rng::gen_bool`] and
//! [`Rng::gen_range`] — backed by SplitMix64. Workloads remain fully
//! deterministic under a caller-supplied seed (the generated streams
//! differ from upstream `rand`, which no test depends on). Swap this path
//! dependency for the registry crate when network access is available.

#![warn(missing_docs)]

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, exactly as upstream rand does it.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<G: RngCore + Sized> Rng for G {}

/// Uniform integer below `bound` by Lemire-style widening multiply (the
/// bias for 64-bit bounds far below 2^64 is negligible for workloads).
fn below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sample range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sample range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64). Replaces upstream's
    /// ChaCha-based `StdRng`; statistical quality is ample for workload
    /// generation, and streams are stable across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
