//! General logic programs from text (Section 8): first-order rule bodies
//! with quantifiers, parsed, reduced to normal programs by Lloyd–Topor,
//! and solved by the alternating fixpoint — the reduced program through
//! the unified [`afp::Engine`].
//!
//! ```text
//! cargo run --example general_programs
//! ```

use afp::fol::{afp_general, lloyd_topor, parse_general};
use afp::{Engine, SafetyPolicy};

fn main() {
    // Three classic graph concepts as FO formulas over an edge relation.
    let src = "
        % a sink has no outgoing edges
        sink(X) <- node(X) & forall Y (not e(X, Y)).

        % a dominated node: some other node reaches everything it reaches
        % (here simplified: Y covers X if every successor of X is a
        % successor of Y)
        covered(X) <- node(X) & exists Y (node(Y) & not X = Y &
                      forall Z (not e(X, Z) | e(Y, Z))).

        % well-founded nodes (Example 8.2)
        wf(X) <- node(X) & not exists Y (e(Y, X) & not wf(Y)).

        node(a). node(b). node(c). node(d).
        e(a, b). e(b, a). e(a, c). e(d, c).
    ";
    let y = parse_general(src).expect("parses");

    // Solve directly with the general alternating fixpoint.
    let result = afp_general(&y).expect("evaluates");
    let names = result.ctx.set_to_names(&y, &result.model.pos);
    println!("general AFP, true atoms:");
    for n in names
        .iter()
        .filter(|n| !n.starts_with("node") && !n.starts_with("e("))
    {
        println!("  {n}");
    }

    // And via the Lloyd–Topor reduction.
    let t = lloyd_topor(&y);
    println!(
        "\nafter elementary simplification ({} aux relations):",
        t.aux.len()
    );
    for r in t.program.rules.iter().filter(|r| !r.is_fact()) {
        println!(
            "  {}",
            afp::datalog::ast::display_rule(r, &t.program.symbols)
        );
    }
    for aux in &t.aux {
        println!(
            "  % {} is globally {}",
            t.program.symbols.name(aux.pred),
            if aux.globally_positive {
                "positive"
            } else {
                "negative"
            }
        );
    }

    // The reduced normal program goes straight into an Engine session
    // (no surface-text round trip).
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let model = engine
        .load_program(t.program.clone())
        .expect("grounds")
        .solve()
        .expect("solves");
    let mut norm: Vec<String> = model
        .true_atoms()
        .filter(|n| n.starts_with("sink(") || n.starts_with("covered(") || n.starts_with("wf("))
        .collect();
    norm.sort();
    println!("\nnormal-program AFP, original relations: {norm:?}");

    // Sanity: the two routes agree on the original relations
    // (Theorem 8.7 — all three predicates are globally positive).
    let mut general: Vec<String> = names
        .into_iter()
        .filter(|n| n.starts_with("sink(") || n.starts_with("covered(") || n.starts_with("wf("))
        .collect();
    general.sort();
    assert_eq!(general, norm);
    println!("\nTheorem 8.7 agreement on sink/covered/wf: ✓");
}
