//! The win–move game of Example 5.2 / Figure 4: `wins(X)` is true, false,
//! or undefined in the well-founded model exactly as position X is won,
//! lost, or drawn in the combinatorial game ("one wins if the opponent has
//! no moves, as in checkers").
//!
//! ```text
//! cargo run --example win_move
//! ```

use afp::{well_founded, Truth};

fn game(edges: &[(&str, &str)]) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for (u, v) in edges {
        src.push_str(&format!("move({u}, {v}).\n"));
    }
    src
}

fn report(name: &str, edges: &[(&str, &str)], nodes: &[&str]) {
    let sol = well_founded(&game(edges)).expect("valid program");
    println!("\n{name}: edges {edges:?}");
    for n in nodes {
        let value = match sol.truth("wins", &[n]) {
            Truth::True => "WIN",
            Truth::False => "LOSE",
            Truth::Undefined => "DRAW",
        };
        println!("  {n}: {value}");
    }
    println!(
        "  well-founded model total? {}  (total ⇒ unique stable model)",
        sol.is_total()
    );
}

fn main() {
    // Figure 4(a): acyclic — everything decided.
    report(
        "Figure 4(a) — acyclic",
        &[
            ("a", "b"),
            ("a", "e"),
            ("a", "g"),
            ("b", "c"),
            ("b", "d"),
            ("e", "f"),
            ("g", "h"),
            ("g", "i"),
        ],
        &["a", "b", "c", "d", "e", "f", "g", "h", "i"],
    );

    // Figure 4(b): a ⇄ b cycle with a tail — a, b are drawn.
    report(
        "Figure 4(b) — cyclic, partial model",
        &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        &["a", "b", "c", "d"],
    );

    // Figure 4(c): cycle, but still a total model.
    report(
        "Figure 4(c) — cyclic, total model",
        &[("a", "b"), ("b", "a"), ("b", "c")],
        &["a", "b", "c"],
    );

    // A bigger random tournament, cross-checked against retrograde
    // analysis (the classical game-theory algorithm).
    use afp_bench::gen::{node_name, Graph};
    use afp_bench::{solve, GameValue};
    // Sparse ER digraph: some sinks (immediate losses), some cycles
    // (draws) — a healthy mix of outcomes.
    let g = Graph::random(60, 0.03, 2026);
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    let sol = well_founded(&src).unwrap();
    let reference = solve(&g);
    let mut agree = 0;
    for (i, val) in reference.iter().enumerate() {
        let t = sol.truth("wins", &[&node_name(i as u32)]);
        let matches = matches!(
            (val, t),
            (GameValue::Win, Truth::True)
                | (GameValue::Lose, Truth::False)
                | (GameValue::Draw, Truth::Undefined)
        );
        if matches {
            agree += 1;
        }
    }
    println!(
        "\nrandom 60-node game: WFS agrees with retrograde analysis on {agree}/{} positions",
        g.n
    );
    assert_eq!(agree, g.n);
    let wins = reference.iter().filter(|v| **v == GameValue::Win).count();
    let loses = reference.iter().filter(|v| **v == GameValue::Lose).count();
    println!(
        "  {} won, {} lost, {} drawn",
        wins,
        loses,
        g.n - wins - loses
    );
}
