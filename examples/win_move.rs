//! The win–move game of Example 5.2 / Figure 4, through the unified
//! [`afp::Engine`]: `wins(X)` is true, false, or undefined in the
//! well-founded model exactly as position X is won, lost, or drawn in the
//! combinatorial game ("one wins if the opponent has no moves, as in
//! checkers"). The closing act plays the game *live*: new moves are
//! asserted into the session and re-solved warm.
//!
//! ```text
//! cargo run --example win_move
//! ```

use afp::{Engine, Truth};

fn game(edges: &[(&str, &str)]) -> String {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for (u, v) in edges {
        src.push_str(&format!("move({u}, {v}).\n"));
    }
    src
}

fn report(engine: &Engine, name: &str, edges: &[(&str, &str)], nodes: &[&str]) {
    let model = engine.solve(&game(edges)).expect("valid program");
    println!("\n{name}: edges {edges:?}");
    for n in nodes {
        let value = match model.truth("wins", &[n]) {
            Truth::True => "WIN",
            Truth::False => "LOSE",
            Truth::Undefined => "DRAW",
        };
        println!("  {n}: {value}");
    }
    println!(
        "  well-founded model total? {}  (total ⇒ unique stable model)",
        model.is_total()
    );
}

fn main() {
    let engine = Engine::default();

    // Figure 4(a): acyclic — everything decided.
    report(
        &engine,
        "Figure 4(a) — acyclic",
        &[
            ("a", "b"),
            ("a", "e"),
            ("a", "g"),
            ("b", "c"),
            ("b", "d"),
            ("e", "f"),
            ("g", "h"),
            ("g", "i"),
        ],
        &["a", "b", "c", "d", "e", "f", "g", "h", "i"],
    );

    // Figure 4(b): a ⇄ b cycle with a tail — a, b are drawn.
    report(
        &engine,
        "Figure 4(b) — cyclic, partial model",
        &[("a", "b"), ("b", "a"), ("b", "c"), ("c", "d")],
        &["a", "b", "c", "d"],
    );

    // Figure 4(c): cycle, but still a total model.
    report(
        &engine,
        "Figure 4(c) — cyclic, total model",
        &[("a", "b"), ("b", "a"), ("b", "c")],
        &["a", "b", "c"],
    );

    // A bigger random tournament, cross-checked against retrograde
    // analysis (the classical game-theory algorithm).
    use afp_bench::gen::{node_name, Graph};
    use afp_bench::{solve, GameValue};
    // Sparse ER digraph: some sinks (immediate losses), some cycles
    // (draws) — a healthy mix of outcomes.
    let g = Graph::random(60, 0.03, 2026);
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for &(u, v) in &g.edges {
        src.push_str(&format!("move({}, {}).\n", node_name(u), node_name(v)));
    }
    let model = engine.solve(&src).unwrap();
    let reference = solve(&g);
    let mut agree = 0;
    for (i, val) in reference.iter().enumerate() {
        let t = model.truth("wins", &[&node_name(i as u32)]);
        let matches = matches!(
            (val, t),
            (GameValue::Win, Truth::True)
                | (GameValue::Lose, Truth::False)
                | (GameValue::Draw, Truth::Undefined)
        );
        if matches {
            agree += 1;
        }
    }
    println!(
        "\nrandom 60-node game: WFS agrees with retrograde analysis on {agree}/{} positions",
        g.n
    );
    assert_eq!(agree, g.n);
    let wins = reference.iter().filter(|v| **v == GameValue::Win).count();
    let loses = reference.iter().filter(|v| **v == GameValue::Lose).count();
    println!(
        "  {} won, {} lost, {} drawn",
        wins,
        loses,
        g.n - wins - loses
    );

    // Live play: Figure 4(b) again, but the board grows move by move.
    // The session reuses its grounding — and its previous conclusions —
    // on every re-solve.
    let mut session = engine
        .load("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a).")
        .unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("wins", &["a"]), Truth::Undefined); // pure 2-cycle: drawn
    session.assert_facts("move(b, c). move(c, d).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("wins", &["c"]), Truth::True); // c moves to the sink d
    let stats = session.stats();
    println!(
        "\nlive session: {} solves, {} warm, {} re-grounds (grounding reused in place)",
        stats.solves, stats.warm_solves, stats.regrounds
    );
    assert_eq!(stats.regrounds, 0);
}
