//! Example 8.2: the well-founded nodes of a graph, written as a fixpoint-
//! logic formula with a universal quantifier, reduced to a normal program
//! by Lloyd–Topor elementary simplification, and solved by the alternating
//! fixpoint (via the unified [`afp::Engine`]) — all three routes agreeing
//! (Theorems 8.1 and 8.7).
//!
//! ```text
//! cargo run --example wellfounded_nodes
//! ```

use afp::datalog::ast::{Atom, Term};
use afp::fol::{afp_general, fp_model, lloyd_topor, Formula, GeneralProgram, GeneralRule};
use afp::{Engine, SafetyPolicy};

fn main() {
    // w(X) ← node(X) ∧ ¬∃Y[e(Y,X) ∧ ¬w(Y)]
    //
    // "a node is well-founded if it has no infinite descending chain of
    // edges" — the w subgoal is positive but sits inside a negative
    // existential subformula.
    let mut y = GeneralProgram::new();
    let w = y.symbols.intern("w");
    let e = y.symbols.intern("e");
    let node = y.symbols.intern("node");
    let xv = y.symbols.intern("X");
    let yv = y.symbols.intern("Y");
    y.rules.push(GeneralRule {
        head: Atom::new(w, vec![Term::Var(xv)]),
        body: Formula::And(vec![
            Formula::Atom(Atom::new(node, vec![Term::Var(xv)])),
            Formula::not(Formula::exists(
                vec![yv],
                Formula::And(vec![
                    Formula::Atom(Atom::new(e, vec![Term::Var(yv), Term::Var(xv)])),
                    Formula::not(Formula::Atom(Atom::new(w, vec![Term::Var(yv)]))),
                ]),
            )),
        ]),
    });

    // Graph: cycle a ⇄ b feeding c; independent chain d → f.
    for n in ["a", "b", "c", "d", "f"] {
        let c = y.symbols.intern(n);
        y.facts.push(Atom::new(node, vec![Term::Const(c)]));
    }
    for (u, v) in [("a", "b"), ("b", "a"), ("a", "c"), ("d", "f")] {
        let cu = y.symbols.intern(u);
        let cv = y.symbols.intern(v);
        y.facts
            .push(Atom::new(e, vec![Term::Const(cu), Term::Const(cv)]));
    }

    // Route 1: evaluate directly in fixpoint logic (w occurs positively).
    let (fp, ctx) = fp_model(&y).expect("an FP system");
    let fp_w = pick_w(&ctx.set_to_names(&y, &fp));
    println!("fixpoint logic           : w = {fp_w:?}");

    // Route 2: the general alternating fixpoint (Theorem 8.1: same).
    let general = afp_general(&y).expect("evaluates");
    let gen_w = pick_w(&general.ctx.set_to_names(&y, &general.model.pos));
    println!("general AFP              : w = {gen_w:?}");
    assert_eq!(fp_w, gen_w);

    // Route 3: Lloyd–Topor to a normal program, then an Engine session.
    let t = lloyd_topor(&y);
    println!("\nnormal program after elementary simplification:");
    for r in t.program.rules.iter().filter(|r| !r.is_fact()) {
        println!(
            "  {}",
            afp::datalog::ast::display_rule(r, &t.program.symbols)
        );
    }
    let u_name = t.program.symbols.name(t.aux[0].pred).to_string();
    println!("  ({u_name} is the 'unfounded' aux relation; globally negative — Definition 8.5)");
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let model = engine
        .load_program(t.program)
        .expect("grounds")
        .solve()
        .expect("solves");
    let norm_w = pick_w(&sorted(model.true_atoms()));
    println!("\nnormal program AFP⁺      : w = {norm_w:?}");
    assert_eq!(fp_w, norm_w, "Theorem 8.7");

    println!("\nall three routes agree: the well-founded nodes are d and f —");
    println!("the a ⇄ b cycle gives a, b (and their successor c) infinite descending chains.");
    // Example 8.2's closing remark: "there will be no positive literals
    // for the auxiliary relation u in the AFP model. This is typical for
    // auxiliary relations that replace negative subformulas" — and the
    // normal program's AFP leaves w(a), w(b), w(c) *undefined* rather
    // than false: normal-program alternating fixpoints capture negation
    // of positive existential closures, not of universal ones.
    let aux_pos = model
        .true_atoms()
        .filter(|n| n.starts_with(u_name.as_str()))
        .count();
    assert_eq!(aux_pos, 0);
    println!(
        "as the paper remarks, the aux relation has {aux_pos} positive literals in the AFP model,"
    );
    println!(
        "and w(a), w(b), w(c) come out undefined (not false): {:?} undefined",
        pick_w(&sorted(model.undefined_atoms()))
    );
}

fn pick_w(names: &[String]) -> Vec<String> {
    names
        .iter()
        .filter(|n| n.starts_with("w("))
        .cloned()
        .collect()
}

fn sorted(it: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = it.collect();
    v.sort();
    v
}
