//! Quickstart: load a program into an [`afp::Engine`] session, compute its
//! well-founded partial model via the alternating fixpoint, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use afp::{Engine, Semantics, Truth, WfStrategy};

fn main() {
    // Example 5.1 from the paper: p{d,e,f,g,h} come out false,
    // p{a,b} stay undefined, p{c,i} are true.
    let program = "
        p(a) :- p(c), not p(b).
        p(b) :- not p(a).
        p(c).
        p(d) :- p(e), not p(f).
        p(d) :- p(f), not p(g).
        p(d) :- p(h).
        p(e) :- p(d).
        p(f) :- p(e).
        p(f) :- not p(c).
        p(i) :- p(c), not p(d).
    ";

    let engine = Engine::builder()
        .semantics(Semantics::WellFounded {
            strategy: WfStrategy::default(),
        })
        .trace(true) // record the alternating sequence (Table I)
        .build();
    let mut session = engine.load(program).expect("parses and grounds");
    let model = session.solve().expect("solves");

    println!("well-founded partial model of Example 5.1");
    println!("  true      : {:?}", sorted(model.true_atoms()));
    println!("  false     : {:?}", sorted(model.false_atoms()));
    println!("  undefined : {:?}", sorted(model.undefined_atoms()));
    println!("  total?    : {}", model.is_total());

    // Point queries.
    for arg in ["a", "c", "d"] {
        let t = model.truth("p", &[arg]);
        println!("  p({arg}) is {t:?}");
    }
    assert_eq!(model.truth("p", &["c"]), Truth::True);
    assert_eq!(model.truth("p", &["d"]), Truth::False);
    assert_eq!(model.truth("p", &["a"]), Truth::Undefined);

    // The alternating sequence itself (Table I) was recorded by the
    // engine's `trace(true)` option.
    let trace = model.trace().expect("trace requested");
    println!("\nalternating sequence (|Ĩ_k|, |S_P(Ĩ_k)|):");
    for step in &trace.steps {
        println!(
            "  k={}  negatives={}  positives={}",
            step.k,
            step.i_tilde.count(),
            step.s_p.count()
        );
    }

    // The same session answers under any other semantics of the paper.
    let stable = session
        .solve_with(Semantics::Stable {
            max_models: usize::MAX,
        })
        .expect("enumerates");
    println!(
        "\nthe partial model is not total, and indeed {} stable models exist",
        stable.stable_models().len()
    );
}

fn sorted(it: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = it.collect();
    v.sort();
    v
}
