//! Quickstart: parse a program, compute its well-founded partial model via
//! the alternating fixpoint, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use afp::{well_founded, Truth};

fn main() {
    // Example 5.1 from the paper: p{d,e,f,g,h} come out false,
    // p{a,b} stay undefined, p{c,i} are true.
    let program = "
        p(a) :- p(c), not p(b).
        p(b) :- not p(a).
        p(c).
        p(d) :- p(e), not p(f).
        p(d) :- p(f), not p(g).
        p(d) :- p(h).
        p(e) :- p(d).
        p(f) :- p(e).
        p(f) :- not p(c).
        p(i) :- p(c), not p(d).
    ";

    let solution = well_founded(program).expect("parses and grounds");

    println!("well-founded partial model of Example 5.1");
    println!("  true      : {:?}", solution.true_atoms());
    println!("  false     : {:?}", solution.false_atoms());
    println!("  undefined : {:?}", solution.undefined_atoms());
    println!("  total?    : {}", solution.is_total());

    // Point queries.
    for arg in ["a", "c", "d"] {
        let t = solution.truth("p", &[arg]);
        println!("  p({arg}) is {t:?}");
    }
    assert_eq!(solution.truth("p", &["c"]), Truth::True);
    assert_eq!(solution.truth("p", &["d"]), Truth::False);
    assert_eq!(solution.truth("p", &["a"]), Truth::Undefined);

    // The alternating sequence itself (Table I) is available on demand.
    let sol = afp::well_founded_with(
        program,
        &afp::GroundOptions::default(),
        &afp::AfpOptions {
            record_trace: true,
            ..Default::default()
        },
    )
    .unwrap();
    let trace = sol.result.trace.as_ref().unwrap();
    println!("\nalternating sequence (|Ĩ_k|, |S_P(Ĩ_k)|):");
    for step in &trace.steps {
        println!(
            "  k={}  negatives={}  positives={}",
            step.k,
            step.i_tilde.count(),
            step.s_p.count()
        );
    }
}
