//! Justifications: ask the engine *why* each conclusion of the
//! well-founded model holds, in the paper's own vocabulary — derivations
//! for true atoms, witnesses of unusability (Definition 6.1) for false
//! ones, and the undefined atoms a draw hinges on — through
//! [`afp::Model::explain`].
//!
//! ```text
//! cargo run --example explain
//! ```

use afp::Engine;

fn main() {
    // A little security policy: access is granted if some rule allows it
    // and no unresolved investigation blocks it.
    let src = "
        grant(alice)  :- employee(alice), not suspended(alice).
        grant(bob)    :- employee(bob), not suspended(bob).
        suspended(bob) :- flagged(bob).
        flagged(bob).
        employee(alice). employee(bob).

        % mallory's access depends on a negative cycle: under investigation
        % if not cleared, cleared if not under investigation.
        grant(mallory)        :- employee(mallory), not investigation(mallory).
        investigation(mallory) :- not cleared(mallory).
        cleared(mallory)       :- not investigation(mallory).
        employee(mallory).

        % circular vouching gives no grounds at all.
        vouched(x1) :- vouched(x2).
        vouched(x2) :- vouched(x1).
    ";
    let model = Engine::default().solve(src).expect("valid program");

    for (pred, args) in [
        ("grant", vec!["alice"]),
        ("grant", vec!["bob"]),
        ("grant", vec!["mallory"]),
        ("vouched", vec!["x1"]),
    ] {
        match model.explain(pred, &args, 4) {
            Some(tree) => println!("{tree}"),
            None => println!(
                "{pred}({}) is FALSE: the grounder found no possible derivation\n",
                args.join(", ")
            ),
        }
    }
}
