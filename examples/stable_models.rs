//! Stable models next to the well-founded model (Sections 2.4, 4, 5)
//! through one [`afp::Engine`] session: enumeration, the `S̃_P`-fixpoint
//! characterization, and the WFS ⊆ every-stable-model theorem.
//!
//! ```text
//! cargo run --example stable_models
//! ```

use afp::core::ops;
use afp::{Engine, Semantics};

const ALL: Semantics = Semantics::Stable {
    max_models: usize::MAX,
};

fn main() {
    // A choice between p and q, with consequences.
    let src = "
        p :- not q.
        q :- not p.
        r :- p.
        r :- q.
        s :- not r.
        base.
    ";
    let mut session = Engine::default().load(src).unwrap();

    let wfs = session.solve().unwrap();
    println!("well-founded model:");
    println!("  true      : {:?}", sorted(wfs.true_atoms()));
    println!("  false     : {:?}", sorted(wfs.false_atoms()));
    println!("  undefined : {:?}", sorted(wfs.undefined_atoms()));

    let stable = session.solve_with(ALL).unwrap();
    let ground = stable.ground();
    println!("\nstable models ({}):", stable.stable_models().len());
    for m in stable.stable_models() {
        println!("  {:?}", ground.set_to_names(m));
        // Section 5: every stable model is a fixpoint of S̃_P …
        let m_tilde = m.complement();
        assert_eq!(ops::s_tilde(ground, &m_tilde), m_tilde);
        // … and contains the well-founded partial model.
        assert!(wfs.partial_model().pos.is_subset(m));
        assert!(wfs.partial_model().neg.is_disjoint(m));
        assert!(afp::semantics::is_stable(ground, m));
    }
    println!("\nevery stable model: is an S̃_P fixpoint ✓, contains the WFS ✓");
    // The cautious collapse of the two models decides exactly r and base.
    assert_eq!(sorted(stable.true_atoms()), vec!["base", "r"]);

    // An odd negative cycle has NO stable model, while the WFS still
    // assigns what it can.
    let mut odd_session = Engine::new(ALL)
        .load("a :- not b. b :- not c. c :- not a. d.")
        .unwrap();
    let odd_stable = odd_session.solve().unwrap();
    let odd_wfs = odd_session
        .solve_with(Semantics::WellFounded {
            strategy: Default::default(),
        })
        .unwrap();
    println!(
        "\nodd cycle program: {} stable models; WFS still concludes {:?}",
        odd_stable.stable_models().len(),
        sorted(odd_wfs.true_atoms())
    );
    assert!(odd_stable.stable_models().is_empty());

    // SAT as stable models (the NP-completeness construction of §2.4):
    // models of (x1 ∨ ¬x2) ∧ (x2 ∨ x3).
    let sat = afp_bench::gen::sat_to_stable(3, &[[1, -2, -2], [2, 3, 3]]);
    let sat_model = Engine::new(ALL).load_ground(sat).solve().unwrap();
    println!(
        "\nSAT reduction: {} satisfying assignments found as stable models:",
        sat_model.stable_models().len()
    );
    for m in sat_model.stable_models() {
        let names: Vec<String> = sat_model
            .ground()
            .set_to_names(m)
            .into_iter()
            .filter(|n| n.starts_with('v') || n.starts_with("nv"))
            .collect();
        println!("  {names:?}");
    }
}

fn sorted(it: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = it.collect();
    v.sort();
    v
}
