//! Stable models next to the well-founded model (Sections 2.4, 4, 5):
//! enumeration, the `S̃_P`-fixpoint characterization, and the
//! WFS ⊆ every-stable-model theorem.
//!
//! ```text
//! cargo run --example stable_models
//! ```

use afp::core::ops;
use afp::datalog::parse_program;
use afp::semantics::{enumerate_stable, is_stable, EnumerateOptions};

fn main() {
    // A choice between p and q, with consequences.
    let src = "
        p :- not q.
        q :- not p.
        r :- p.
        r :- q.
        s :- not r.
        base.
    ";
    let program = parse_program(src).unwrap();
    let ground = afp::datalog::ground(&program).unwrap();

    let wfs = afp::core::alternating_fixpoint(&ground);
    println!("well-founded model:");
    println!("  true      : {:?}", ground.set_to_names(&wfs.model.pos));
    println!("  false     : {:?}", ground.set_to_names(&wfs.model.neg));
    println!(
        "  undefined : {:?}",
        ground.set_to_names(&wfs.undefined())
    );

    let result = enumerate_stable(&ground, &EnumerateOptions::default());
    println!("\nstable models ({}):", result.models.len());
    for m in &result.models {
        println!("  {:?}", ground.set_to_names(m));
        // Section 5: every stable model is a fixpoint of S̃_P …
        let m_tilde = m.complement();
        assert_eq!(ops::s_tilde(&ground, &m_tilde), m_tilde);
        // … and contains the well-founded partial model.
        assert!(wfs.model.pos.is_subset(m));
        assert!(wfs.model.neg.is_disjoint(m));
        assert!(is_stable(&ground, m));
    }
    println!("\nevery stable model: is an S̃_P fixpoint ✓, contains the WFS ✓");

    // An odd negative cycle has NO stable model, while the WFS still
    // assigns what it can.
    let odd = afp::datalog::parse_ground("a :- not b. b :- not c. c :- not a. d.");
    let stable = enumerate_stable(&odd, &EnumerateOptions::default());
    let wfs_odd = afp::core::alternating_fixpoint(&odd);
    println!(
        "\nodd cycle program: {} stable models; WFS still concludes {:?}",
        stable.models.len(),
        odd.set_to_names(&wfs_odd.model.pos)
    );
    assert!(stable.models.is_empty());

    // SAT as stable models (the NP-completeness construction of §2.4):
    // models of (x1 ∨ ¬x2) ∧ (x2 ∨ x3).
    let sat = afp_bench::gen::sat_to_stable(3, &[[1, -2, -2], [2, 3, 3]]);
    let models = afp::semantics::stable_models(&sat);
    println!("\nSAT reduction: {} satisfying assignments found as stable models:", models.len());
    for m in &models {
        let names: Vec<String> = sat
            .set_to_names(m)
            .into_iter()
            .filter(|n| n.starts_with('v') || n.starts_with("nv"))
            .collect();
        println!("  {names:?}");
    }
}
