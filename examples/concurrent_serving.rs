//! Concurrent model serving: a win/move game served to parallel readers
//! while the writer rewires the board live.
//!
//! One [`afp::Service`] owns the writer session; any number of reader
//! threads pin versioned, immutable snapshots and query them lock-free
//! while fact deltas publish new versions behind them. Each published
//! version is a complete, consistent well-founded model — readers never
//! observe a half-applied update, and a pinned snapshot keeps answering
//! for *its* version however far the writer has moved on.
//!
//! Run with `cargo run --example concurrent_serving`.

use afp::{Engine, Truth};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

fn main() {
    // Figure 4(c)'s shape, grown into a little board: a ⇄ b with an
    // escape to the sink c.
    let service = Engine::default()
        .serve(
            "wins(X) :- move(X, Y), not wins(Y).
             move(a, b). move(b, a). move(b, c).",
        )
        .expect("program loads and solves");

    println!("version 0 published:");
    println!(
        "  wins(b) = {:?} (b escapes to the sink c)",
        service.snapshot().truth("wins", &["b"])
    );

    // A reader pins version 0 before any update lands. This snapshot is
    // immutable for its whole lifetime.
    let pinned_v0 = service.snapshot();

    let stop = AtomicBool::new(false);
    let results: Vec<(usize, u64, usize)> = thread::scope(|s| {
        // Three readers poll the *current* version as it advances; each
        // query runs against an immutable snapshot without any lock.
        let mut readers = Vec::new();
        for id in 0..3usize {
            let service = &service;
            let stop = &stop;
            readers.push(s.spawn(move || {
                let mut reads = 0usize;
                let mut last_version;
                // At least one pass even if the writer wins the race to
                // finish (single-core schedulers do that).
                loop {
                    let snapshot = service.snapshot();
                    last_version = snapshot.version();
                    // The hot path: truth probes on the pinned version.
                    for node in ["a", "b", "c", "d", "e"] {
                        let _ = snapshot.truth("wins", &[node]);
                        reads += 1;
                    }
                    // Readers can also run whole relevance-restricted
                    // subqueries on their own thread.
                    let sub = snapshot.subquery(["wins(a)"]).expect("subquery solves");
                    let _ = sub.truth("wins", &["a"]);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    thread::yield_now();
                }
                (id, last_version, reads)
            }));
        }

        // The writer extends the game live: c stops being a sink, then
        // the whole tail is torn down again. Each submission publishes a
        // new version; concurrent submissions would coalesce into shared
        // write cycles.
        let service = &service;
        for delta in [
            "move(c, d).", // c can now move: wins(c) flips
            "move(d, e).",
            "move(e, c).", // 3-cycle c → d → e → c: all three undefined
        ] {
            let version = service.assert_facts(delta).expect("delta applies");
            let snapshot = service.snapshot();
            println!(
                "version {version}: after `{delta}` wins(c) = {:?}",
                snapshot.truth("wins", &["c"])
            );
        }
        let version = service
            .retract_facts("move(c, d). move(d, e). move(e, c).")
            .expect("batch retract applies");
        println!(
            "version {version}: tail removed, wins(c) = {:?}",
            service.snapshot().truth("wins", &["c"])
        );

        stop.store(true, Ordering::Release);
        readers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (id, version, reads) in results {
        println!("reader {id}: {reads} lock-free reads, last saw version {version}");
    }

    // The version-0 pin never moved, whatever the writer did since.
    assert_eq!(pinned_v0.version(), 0);
    assert_eq!(pinned_v0.truth("wins", &["b"]), Truth::True);
    assert_eq!(pinned_v0.truth("wins", &["c"]), Truth::False);
    println!(
        "pinned version 0 still answers for its own epoch: wins(b) = {:?}",
        pinned_v0.truth("wins", &["b"])
    );

    let stats = service.stats();
    println!(
        "service: {} versions, {} submissions over {} write cycles, {} pins",
        stats.version, stats.submissions, stats.write_cycles, stats.pins
    );
}
