//! Example 2.2: transitive closure and its complement under three
//! semantics. The well-founded (and stratified) semantics give `ntc` as
//! the natural complement; the inflationary semantics floods it.
//!
//! ```text
//! cargo run --example reachability
//! ```

use afp::semantics::{inflationary_fixpoint, perfect_model};
use afp::{well_founded, Truth};

fn main() {
    // The cyclic graph of the Minker objection (Section 2.1): a 2-cycle
    // n0 ⇄ n1 plus an isolated n2. No path from n0 to n2, but the proof
    // search loops forever — program-completion semantics cannot conclude
    // ¬tc(n0, n2); the well-founded semantics can.
    let src = "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        ntc(X, Y) :- node(X), node(Y), not tc(X, Y).
        node(n0). node(n1). node(n2).
        e(n0, n1). e(n1, n0).
    ";
    let sol = well_founded(src).expect("stratified program");
    println!("well-founded semantics (via the alternating fixpoint):");
    println!("  tc  true: {:?}", filter(&sol.true_atoms(), "tc("));
    println!("  ntc true: {:?}", filter(&sol.true_atoms(), "ntc("));
    assert_eq!(sol.truth("ntc", &["n0", "n2"]), Truth::True);
    assert_eq!(sol.truth("tc", &["n0", "n1"]), Truth::True);
    assert!(sol.is_total(), "stratified ⇒ total well-founded model");

    // The perfect (stratified) model agrees exactly.
    let perfect = perfect_model(&sol.ground).expect("locally stratified");
    assert_eq!(perfect.model, sol.result.model);
    println!("\nperfect model (iterated fixpoint) agrees: true");

    // The inflationary semantics concludes ntc for every pair: ¬tc(X,Y)
    // holds vacuously in round one and conclusions are never retracted.
    let ifp = inflationary_fixpoint(&sol.ground);
    let ifp_names = sol.ground.set_to_names(&ifp.model);
    println!("\ninflationary semantics:");
    println!("  ntc true: {:?}", filter(&ifp_names, "ntc("));
    let ntc_count = ifp_names.iter().filter(|n| n.starts_with("ntc(")).count();
    assert_eq!(ntc_count, 9, "IFP floods ntc with all 9 pairs");
    println!(
        "  → all {ntc_count} pairs, including ntc(n0, n1) even though tc(n0, n1) holds. \
         This is the failure Example 2.2 describes."
    );
}

fn filter(names: &[String], prefix: &str) -> Vec<String> {
    names
        .iter()
        .filter(|n| n.starts_with(prefix))
        .cloned()
        .collect()
}
