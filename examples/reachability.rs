//! Example 2.2: transitive closure and its complement under three
//! semantics, all through **one** [`afp::Engine`] session. The
//! well-founded (and stratified) semantics give `ntc` as the natural
//! complement; the inflationary semantics floods it.
//!
//! ```text
//! cargo run --example reachability
//! ```

use afp::{Engine, Semantics, Truth};

fn main() {
    // The cyclic graph of the Minker objection (Section 2.1): a 2-cycle
    // n0 ⇄ n1 plus an isolated n2. No path from n0 to n2, but the proof
    // search loops forever — program-completion semantics cannot conclude
    // ¬tc(n0, n2); the well-founded semantics can.
    let src = "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        ntc(X, Y) :- node(X), node(Y), not tc(X, Y).
        node(n0). node(n1). node(n2).
        e(n0, n1). e(n1, n0).
    ";
    let mut session = Engine::default().load(src).expect("stratified program");
    let wfs = session.solve().expect("solves");
    println!("well-founded semantics (via the alternating fixpoint):");
    println!("  tc  true: {:?}", with_prefix(&wfs, "tc("));
    println!("  ntc true: {:?}", with_prefix(&wfs, "ntc("));
    assert_eq!(wfs.truth("ntc", &["n0", "n2"]), Truth::True);
    assert_eq!(wfs.truth("tc", &["n0", "n1"]), Truth::True);
    assert!(wfs.is_total(), "stratified ⇒ total well-founded model");

    // The perfect (stratified) model agrees exactly — same session, no
    // re-parse, no re-ground.
    let perfect = session
        .solve_with(Semantics::Perfect)
        .expect("locally stratified");
    assert_eq!(perfect.partial_model(), wfs.partial_model());
    println!("\nperfect model (iterated fixpoint) agrees: true");

    // The inflationary semantics concludes ntc for every pair: ¬tc(X,Y)
    // holds vacuously in round one and conclusions are never retracted.
    let ifp = session
        .solve_with(Semantics::Inflationary)
        .expect("always defined");
    println!("\ninflationary semantics:");
    println!("  ntc true: {:?}", with_prefix(&ifp, "ntc("));
    let ntc_count = with_prefix(&ifp, "ntc(").len();
    assert_eq!(ntc_count, 9, "IFP floods ntc with all 9 pairs");
    println!(
        "  → all {ntc_count} pairs, including ntc(n0, n1) even though tc(n0, n1) holds. \
         This is the failure Example 2.2 describes."
    );
}

fn with_prefix(model: &afp::Model, prefix: &str) -> Vec<String> {
    let mut v: Vec<String> = model
        .true_atoms()
        .filter(|n| n.starts_with(prefix))
        .collect();
    v.sort();
    v
}
